#include "eid/incremental.h"

#include <algorithm>

#include "eid/extension.h"

namespace eid {
namespace {

std::string Fingerprint(const Row& row, const std::vector<size_t>& idx,
                        bool* has_null) {
  std::string fp;
  std::string v;
  *has_null = false;
  for (size_t i : idx) {
    if (row[i].is_null()) {
      *has_null = true;
      return std::string();
    }
    v.clear();
    row[i].AppendTo(&v);
    fp += std::to_string(v.size());
    fp += ':';
    fp += v;
    fp += '|';
    fp += static_cast<char>('0' + static_cast<int>(row[i].type()));
  }
  return fp;
}

std::vector<size_t> KeyIndicesOf(const Relation& proto) {
  return proto.PrimaryKeyIndices();
}

}  // namespace

Result<IncrementalIdentifier> IncrementalIdentifier::Create(
    IdentifierConfig config, Relation empty_r, Relation empty_s) {
  if (!empty_r.empty() || !empty_s.empty()) {
    return Status::InvalidArgument(
        "IncrementalIdentifier starts from empty relations");
  }
  EID_RETURN_IF_ERROR(config.correspondence.ValidateAgainst(empty_r, empty_s));
  for (const IdentityRule& rule : config.identity_rules) {
    EID_RETURN_IF_ERROR(rule.Validate());
  }

  IncrementalIdentifier out;

  // Extended schemas via the batch extension machinery on empty inputs.
  ExtendedKey key = config.extended_key.has_value()
                        ? *config.extended_key
                        : ExtendedKey(std::vector<std::string>{});
  ExtensionOptions ext = config.matcher_options.extension;
  if (!config.extended_key.has_value()) ext.derive_all = true;
  ext.compile = false;  // schema-only run over empty relations
  EID_ASSIGN_OR_RETURN(
      ExtensionResult rx,
      ExtendRelation(empty_r, Side::kR, config.correspondence, key,
                     config.ilfds, ext));
  EID_ASSIGN_OR_RETURN(
      ExtensionResult sx,
      ExtendRelation(empty_s, Side::kS, config.correspondence, key,
                     config.ilfds, ext));
  out.r_ext_schema_ = rx.extended.schema();
  out.s_ext_schema_ = sx.extended.schema();
  out.r_added_ = rx.added_attributes;
  out.s_added_ = sx.added_attributes;

  // Distinctness rules: explicit + Proposition 1 induced.
  out.all_distinctness_ = config.distinctness_rules;
  for (const DistinctnessRule& rule : out.all_distinctness_) {
    EID_RETURN_IF_ERROR(rule.Validate());
  }
  if (config.distinctness_from_ilfds) {
    for (const Ilfd& f : config.ilfds.ilfds()) {
      for (const Atom& c : f.consequent()) {
        EID_ASSIGN_OR_RETURN(
            DistinctnessRule rule,
            DistinctnessRuleFromIlfd(Ilfd::Implies(f.antecedent(), c)));
        out.all_distinctness_.push_back(std::move(rule));
      }
    }
  }

  out.r_proto_ = std::move(empty_r);
  out.s_proto_ = std::move(empty_s);
  out.config_ = std::move(config);

  // Staged per-insert acceleration: blocking plans per (rule,
  // orientation) against the extended schemas, and the union of columns
  // those plans bucket on (maintained by the dynamic value indexes and
  // AMQ filters on every insert/delete).
  if (out.config_.matcher_options.staged) {
    out.identity_plans_.reserve(out.config_.identity_rules.size() * 2);
    for (const IdentityRule& rule : out.config_.identity_rules) {
      for (bool flipped : {false, true}) {
        out.identity_plans_.push_back(
            exec::PlanBlocking(rule.predicates(), out.r_ext_schema_,
                               out.s_ext_schema_, flipped));
      }
    }
    out.distinct_plans_.reserve(out.all_distinctness_.size() * 2);
    for (const DistinctnessRule& rule : out.all_distinctness_) {
      for (bool flipped : {false, true}) {
        out.distinct_plans_.push_back(
            exec::PlanBlocking(rule.predicates(), out.r_ext_schema_,
                               out.s_ext_schema_, flipped));
      }
    }
    auto track = [](const Schema& schema, const std::string& attr,
                    std::vector<size_t>* cols) {
      std::optional<size_t> c = schema.IndexOf(attr);
      if (c.has_value() &&
          std::find(cols->begin(), cols->end(), *c) == cols->end()) {
        cols->push_back(*c);
      }
    };
    for (const std::vector<exec::BlockingPlan>* plans :
         {&out.identity_plans_, &out.distinct_plans_}) {
      for (const exec::BlockingPlan& p : *plans) {
        if (p.impossible) continue;
        if (p.has_join) {
          track(out.r_ext_schema_, p.r_attr, &out.r_tracked_cols_);
          track(out.s_ext_schema_, p.s_attr, &out.s_tracked_cols_);
        }
        for (const auto& [attr, v] : p.r_const_eq) {
          track(out.r_ext_schema_, attr, &out.r_tracked_cols_);
        }
        for (const auto& [attr, v] : p.s_const_eq) {
          track(out.s_ext_schema_, attr, &out.s_tracked_cols_);
        }
      }
    }
  }

  // Lower the session's programs once: derivation per side (the memo
  // caches persist across inserts, so repeated projections derive once
  // per session) and every rule antecedent per orientation.
  if (out.config_.matcher_options.compile) {
    DerivationOptions derivation =
        out.config_.matcher_options.extension.derivation;
    if (out.config_.extended_key.has_value() &&
        derivation.target_attributes.empty()) {
      derivation.target_attributes = out.config_.extended_key->attributes();
    }
    out.r_derive_ = std::make_unique<compile::DerivationProgram>(
        compile::DerivationProgram::Compile(out.r_ext_schema_,
                                            out.config_.ilfds, derivation));
    out.s_derive_ = std::make_unique<compile::DerivationProgram>(
        compile::DerivationProgram::Compile(out.s_ext_schema_,
                                            out.config_.ilfds, derivation));
    out.r_eval_ = std::make_unique<ClosureEvaluator>(&out.r_derive_->kb());
    out.s_eval_ = std::make_unique<ClosureEvaluator>(&out.s_derive_->kb());
    out.identity_programs_.reserve(out.config_.identity_rules.size() * 2);
    for (const IdentityRule& rule : out.config_.identity_rules) {
      for (bool flipped : {false, true}) {
        out.identity_programs_.push_back(compile::CompiledConjunction::Compile(
            rule.predicates(), out.r_ext_schema_, out.s_ext_schema_,
            flipped));
      }
    }
    out.distinct_programs_.reserve(out.all_distinctness_.size() * 2);
    for (const DistinctnessRule& rule : out.all_distinctness_) {
      for (bool flipped : {false, true}) {
        out.distinct_programs_.push_back(compile::CompiledConjunction::Compile(
            rule.predicates(), out.r_ext_schema_, out.s_ext_schema_,
            flipped));
      }
    }
  }
  return out;
}

Result<size_t> IncrementalIdentifier::Insert(Side side, Row row) {
  const bool is_r = side == Side::kR;
  Relation& proto = is_r ? r_proto_ : s_proto_;
  const Schema& ext_schema = is_r ? r_ext_schema_ : s_ext_schema_;
  std::vector<Entry>& entries = is_r ? r_entries_ : s_entries_;
  auto& index = is_r ? r_index_ : s_index_;
  std::vector<Entry>& others = is_r ? s_entries_ : r_entries_;
  auto& other_index = is_r ? s_index_ : r_index_;
  const Schema& other_schema = is_r ? s_ext_schema_ : r_ext_schema_;

  // Schema/type/key validation via the prototype relation. The proto
  // accumulates live rows so candidate-key uniqueness is enforced; deleted
  // rows are compacted out below.
  EID_RETURN_IF_ERROR(proto.Insert(row));

  // Extend: base values (already world-positioned: renaming preserves
  // column order) + NULLs for the added K_ext columns, then derive.
  Entry entry;
  entry.base = row;
  entry.extended = std::move(row);
  entry.extended.resize(ext_schema.size(), Value::Null());
  {
    const bool compiled = (is_r ? r_derive_ : s_derive_) != nullptr;
    std::vector<compile::DerivationWrite> writes;
    Result<Derivation> derived = [&]() -> Result<Derivation> {
      if (compiled) {
        compile::DerivationProgram* program =
            (is_r ? r_derive_ : s_derive_).get();
        ClosureEvaluator* evaluator = (is_r ? r_eval_ : s_eval_).get();
        return program->Derive(entry.extended, evaluator,
                               is_r ? &r_memo_ : &s_memo_, &writes);
      }
      DerivationOptions derivation =
          config_.matcher_options.extension.derivation;
      if (config_.extended_key.has_value() &&
          derivation.target_attributes.empty()) {
        derivation.target_attributes = config_.extended_key->attributes();
      }
      TupleView view(&ext_schema, &entry.extended);
      return DeriveTuple(view, config_.ilfds, derivation);
    }();
    if (!derived.ok()) {
      // Roll the proto insertion back by rebuilding it without the row.
      Relation rebuilt(proto.name(), proto.schema());
      for (const KeyDef& k : proto.keys()) {
        std::vector<std::string> names;
        for (size_t i : k.attribute_indices) {
          names.push_back(proto.schema().attribute(i).name);
        }
        EID_RETURN_IF_ERROR(rebuilt.DeclareKey(names));
      }
      for (size_t i = 0; i + 1 < proto.size(); ++i) {
        EID_RETURN_IF_ERROR(rebuilt.Insert(proto.row(i)));
      }
      proto = std::move(rebuilt);
      return derived.status();
    }
    if (compiled) {
      for (const compile::DerivationWrite& w : writes) {
        if (entry.extended[w.column].is_null()) {
          entry.extended[w.column] = w.value;
        }
      }
    } else {
      for (const auto& [attr, value] : derived->derived) {
        std::optional<size_t> idx = ext_schema.IndexOf(attr);
        if (idx.has_value() && entry.extended[*idx].is_null()) {
          entry.extended[*idx] = value;
        }
      }
    }
  }
  entry.alive = true;

  // Extended-key fingerprint + index.
  std::vector<size_t> ext_idx;
  if (config_.extended_key.has_value()) {
    for (const std::string& a : config_.extended_key->attributes()) {
      EID_ASSIGN_OR_RETURN(size_t i, ext_schema.RequireIndex(a));
      ext_idx.push_back(i);
    }
    bool has_null = false;
    entry.ext_key_fingerprint = Fingerprint(entry.extended, ext_idx,
                                            &has_null);
    if (has_null) entry.ext_key_fingerprint.clear();
  }

  size_t id = entries.size();
  entries.push_back(std::move(entry));
  Entry& stored = entries.back();
  if (is_r) ++r_live_; else ++s_live_;
  if (!stored.ext_key_fingerprint.empty()) {
    index[stored.ext_key_fingerprint].push_back(id);
  }

  // Dynamic value indexes + AMQ fingerprints over the columns the
  // blocking plans bucket on — one AMQ copy per row occurrence so Delete
  // can erase exactly this row's copies.
  const std::vector<size_t>& tracked =
      is_r ? r_tracked_cols_ : s_tracked_cols_;
  {
    auto& value_index = is_r ? r_value_index_ : s_value_index_;
    exec::AmqFilter& value_amq = is_r ? r_value_amq_ : s_value_amq_;
    for (size_t col : tracked) {
      const Value& v = stored.extended[col];
      if (v.is_null()) continue;
      value_index[col][v].push_back(id);
      value_amq.Insert(exec::FingerprintKey(col, ValueHash{}(v)));
    }
  }

  // Candidate matches: extended-key hash probe + identity rules.
  TupleView self(&ext_schema, &stored.extended);
  auto add_candidate = [&](size_t other_id) {
    size_t r_id = is_r ? id : other_id;
    size_t s_id = is_r ? other_id : id;
    for (const CandidatePair& c : candidates_) {
      if (c.r_id == r_id && c.s_id == s_id) return;
    }
    candidates_.push_back(CandidatePair{r_id, s_id});
  };
  if (!stored.ext_key_fingerprint.empty()) {
    auto it = other_index.find(stored.ext_key_fingerprint);
    if (it != other_index.end()) {
      for (size_t other_id : it->second) {
        if (others[other_id].alive) add_candidate(other_id);
      }
    }
  }
  // Compiled programs take the pair in relation space (r-row, s-row) with
  // both orientations pre-bound; program 2k is rule k direct, 2k+1 flipped.
  const bool compiled_rules = (is_r ? r_derive_ : s_derive_) != nullptr;
  const bool staged = config_.matcher_options.staged;

  // Staged sweep over one rule family: per (rule, orientation), kill the
  // orientation via the inserted row's own-side const conjuncts, then
  // pull candidates from the other side's join/const bucket (AMQ probe
  // first) instead of every live tuple. `fires` evaluates the *full*
  // antecedent for that orientation, so over-approximate buckets stay
  // harmless; the fired bitmap, appended ascending, reproduces the
  // exhaustive other-major break loop's content and order (each other id
  // contributes at most one entry per family).
  auto staged_sweep = [&](const std::vector<exec::BlockingPlan>& plans,
                          size_t rule_count, const auto& fires,
                          std::vector<char>* fired_bitmap) {
    fired_bitmap->assign(others.size(), 0);
    auto& other_value_index = is_r ? s_value_index_ : r_value_index_;
    exec::AmqFilter& other_amq = is_r ? s_value_amq_ : r_value_amq_;
    for (size_t k = 0; k < rule_count; ++k) {
      for (bool flipped : {false, true}) {
        const exec::BlockingPlan& plan = plans[k * 2 + (flipped ? 1 : 0)];
        if (plan.impossible) continue;
        const auto& own_consts = is_r ? plan.r_const_eq : plan.s_const_eq;
        const auto& other_consts = is_r ? plan.s_const_eq : plan.r_const_eq;
        // Exact kill: an own-side const conjunct failing on the inserted
        // row (NULL or not storage-equal) can never be kTrue.
        bool dead = false;
        for (const auto& [attr, constant] : own_consts) {
          std::optional<size_t> col = ext_schema.IndexOf(attr);
          if (!col.has_value()) {
            dead = true;
            break;
          }
          const Value& v = stored.extended[*col];
          if (v.is_null() || !(v == constant)) {
            dead = true;
            break;
          }
        }
        if (dead) continue;
        const std::vector<size_t>* bucket = nullptr;
        bool use_all = false;
        if (plan.has_join) {
          const std::string& own_attr = is_r ? plan.r_attr : plan.s_attr;
          const std::string& other_attr = is_r ? plan.s_attr : plan.r_attr;
          std::optional<size_t> own_col = ext_schema.IndexOf(own_attr);
          std::optional<size_t> other_col = other_schema.IndexOf(other_attr);
          if (!own_col.has_value() || !other_col.has_value()) continue;
          const Value& v = stored.extended[*own_col];
          if (v.is_null()) continue;  // non_null_eq: never joins
          if (!other_amq.Contains(
                  exec::FingerprintKey(*other_col, ValueHash{}(v)))) {
            continue;
          }
          auto ci = other_value_index.find(*other_col);
          if (ci == other_value_index.end()) continue;
          auto bi = ci->second.find(v);
          if (bi == ci->second.end()) continue;
          bucket = &bi->second;
        } else if (!other_consts.empty()) {
          // Seed candidates from the first const filter's bucket; the
          // full evaluation re-checks every conjunct.
          const auto& [attr, constant] = other_consts.front();
          std::optional<size_t> col = other_schema.IndexOf(attr);
          if (!col.has_value()) continue;
          if (!other_amq.Contains(
                  exec::FingerprintKey(*col, ValueHash{}(constant)))) {
            continue;
          }
          auto ci = other_value_index.find(*col);
          if (ci == other_value_index.end()) continue;
          auto bi = ci->second.find(constant);
          if (bi == ci->second.end()) continue;
          bucket = &bi->second;
        } else {
          use_all = true;  // no indexable conjunct: scan the live side
        }
        auto probe = [&](size_t other_id) {
          if ((*fired_bitmap)[other_id] || !others[other_id].alive) return;
          if (fires(k, flipped, other_id)) (*fired_bitmap)[other_id] = 1;
        };
        if (use_all) {
          for (size_t other_id = 0; other_id < others.size(); ++other_id) {
            probe(other_id);
          }
        } else {
          for (size_t other_id : *bucket) probe(other_id);
        }
      }
    }
  };
  auto identity_fires = [&](size_t k, bool flipped, size_t other_id) {
    if (compiled_rules) {
      const Row& r_row = is_r ? stored.extended : others[other_id].extended;
      const Row& s_row = is_r ? others[other_id].extended : stored.extended;
      return identity_programs_[k * 2 + (flipped ? 1 : 0)].Evaluate(
                 r_row, s_row) == Truth::kTrue;
    }
    TupleView other_view(&other_schema, &others[other_id].extended);
    const TupleView& e1 = is_r ? self : other_view;
    const TupleView& e2 = is_r ? other_view : self;
    return (flipped ? config_.identity_rules[k].Matches(e2, e1)
                    : config_.identity_rules[k].Matches(e1, e2)) ==
           Truth::kTrue;
  };
  auto distinct_fires = [&](size_t k, bool flipped, size_t other_id) {
    if (compiled_rules) {
      const Row& r_row = is_r ? stored.extended : others[other_id].extended;
      const Row& s_row = is_r ? others[other_id].extended : stored.extended;
      return distinct_programs_[k * 2 + (flipped ? 1 : 0)].Evaluate(
                 r_row, s_row) == Truth::kTrue;
    }
    TupleView other_view(&other_schema, &others[other_id].extended);
    const TupleView& e1 = is_r ? self : other_view;
    const TupleView& e2 = is_r ? other_view : self;
    return (flipped ? all_distinctness_[k].Applies(e2, e1)
                    : all_distinctness_[k].Applies(e1, e2)) == Truth::kTrue;
  };

  if (!config_.identity_rules.empty()) {
    if (staged) {
      std::vector<char> fired;
      staged_sweep(identity_plans_, config_.identity_rules.size(),
                   identity_fires, &fired);
      for (size_t other_id = 0; other_id < others.size(); ++other_id) {
        if (fired[other_id]) add_candidate(other_id);
      }
    } else {
      for (size_t other_id = 0; other_id < others.size(); ++other_id) {
        if (!others[other_id].alive) continue;
        for (size_t k = 0; k < config_.identity_rules.size(); ++k) {
          if (identity_fires(k, false, other_id) ||
              identity_fires(k, true, other_id)) {
            add_candidate(other_id);
            break;
          }
        }
      }
    }
  }

  // Negative pairs via distinctness rules (both orientations).
  if (staged) {
    std::vector<char> fired;
    staged_sweep(distinct_plans_, all_distinctness_.size(), distinct_fires,
                 &fired);
    for (size_t other_id = 0; other_id < others.size(); ++other_id) {
      if (fired[other_id]) {
        negative_pairs_.push_back(
            CandidatePair{is_r ? id : other_id, is_r ? other_id : id});
      }
    }
  } else {
    for (size_t other_id = 0; other_id < others.size(); ++other_id) {
      if (!others[other_id].alive) continue;
      for (size_t k = 0; k < all_distinctness_.size(); ++k) {
        if (distinct_fires(k, false, other_id) ||
            distinct_fires(k, true, other_id)) {
          negative_pairs_.push_back(CandidatePair{is_r ? id : other_id,
                                                  is_r ? other_id : id});
          break;
        }
      }
    }
  }

  matching_dirty_ = true;
  return id;
}

Result<size_t> IncrementalIdentifier::InsertR(Row row) {
  return Insert(Side::kR, std::move(row));
}

Result<size_t> IncrementalIdentifier::InsertS(Row row) {
  return Insert(Side::kS, std::move(row));
}

Status IncrementalIdentifier::Delete(Side side, size_t id) {
  const bool is_r = side == Side::kR;
  std::vector<Entry>& entries = is_r ? r_entries_ : s_entries_;
  auto& index = is_r ? r_index_ : s_index_;
  Relation& proto = is_r ? r_proto_ : s_proto_;

  if (id >= entries.size() || !entries[id].alive) {
    return Status::NotFound("no live tuple with id " + std::to_string(id));
  }
  entries[id].alive = false;
  if (is_r) --r_live_; else --s_live_;

  if (!entries[id].ext_key_fingerprint.empty()) {
    auto it = index.find(entries[id].ext_key_fingerprint);
    if (it != index.end()) {
      auto& ids = it->second;
      ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
      if (ids.empty()) index.erase(it);
    }
  }

  // Retract this row's value-index entries and its AMQ fingerprint
  // copies (one copy was inserted per tracked non-NULL cell).
  {
    const std::vector<size_t>& tracked =
        is_r ? r_tracked_cols_ : s_tracked_cols_;
    auto& value_index = is_r ? r_value_index_ : s_value_index_;
    exec::AmqFilter& value_amq = is_r ? r_value_amq_ : s_value_amq_;
    for (size_t col : tracked) {
      const Value& v = entries[id].extended[col];
      if (v.is_null()) continue;
      auto ci = value_index.find(col);
      if (ci != value_index.end()) {
        auto bi = ci->second.find(v);
        if (bi != ci->second.end()) {
          auto& ids = bi->second;
          ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
          if (ids.empty()) ci->second.erase(bi);
        }
      }
      value_amq.Erase(exec::FingerprintKey(col, ValueHash{}(v)));
    }
  }

  auto drop = [&](std::vector<CandidatePair>* pairs) {
    pairs->erase(std::remove_if(pairs->begin(), pairs->end(),
                                [&](const CandidatePair& c) {
                                  return (is_r ? c.r_id : c.s_id) == id;
                                }),
                 pairs->end());
  };
  drop(&candidates_);
  drop(&negative_pairs_);

  // Rebuild the proto relation without the dead tuple so its candidate-key
  // slot is freed.
  Relation rebuilt(proto.name(), proto.schema());
  for (const KeyDef& k : proto.keys()) {
    std::vector<std::string> names;
    for (size_t i : k.attribute_indices) {
      names.push_back(proto.schema().attribute(i).name);
    }
    EID_RETURN_IF_ERROR(rebuilt.DeclareKey(names));
  }
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].alive) {
      EID_RETURN_IF_ERROR(rebuilt.Insert(entries[i].base));
    }
  }
  proto = std::move(rebuilt);

  matching_dirty_ = true;
  return Status::Ok();
}

Status IncrementalIdentifier::DeleteR(size_t id) {
  return Delete(Side::kR, id);
}

Status IncrementalIdentifier::DeleteS(size_t id) {
  return Delete(Side::kS, id);
}

void IncrementalIdentifier::RebuildMatching() const {
  if (!matching_dirty_) return;
  matching_dirty_ = false;
  matching_.clear();
  uniqueness_ = Status::Ok();
  std::vector<CandidatePair> sorted = candidates_;
  std::sort(sorted.begin(), sorted.end(),
            [](const CandidatePair& a, const CandidatePair& b) {
              if (a.r_id != b.r_id) return a.r_id < b.r_id;
              return a.s_id < b.s_id;
            });
  std::unordered_map<size_t, size_t> r_used, s_used;
  for (const CandidatePair& c : sorted) {
    if (r_used.count(c.r_id) > 0 || s_used.count(c.s_id) > 0) {
      if (uniqueness_.ok()) {
        uniqueness_ = Status::ConstraintViolation(
            "uniqueness constraint: tuple matched more than once "
            "(candidate R" + std::to_string(c.r_id) + "/S" +
            std::to_string(c.s_id) + " shadowed)");
      }
      continue;
    }
    r_used.emplace(c.r_id, c.s_id);
    s_used.emplace(c.s_id, c.r_id);
    matching_.push_back(c);
  }
}

Result<Relation> IncrementalIdentifier::MatchingRelation() const {
  RebuildMatching();
  std::vector<size_t> r_key = KeyIndicesOf(r_proto_);
  std::vector<size_t> s_key = KeyIndicesOf(s_proto_);
  std::vector<Attribute> attrs;
  for (size_t i : r_key) {
    Attribute a = r_ext_schema_.attribute(i);
    a.name = "R." + a.name;
    attrs.push_back(std::move(a));
  }
  for (size_t i : s_key) {
    Attribute a = s_ext_schema_.attribute(i);
    a.name = "S." + a.name;
    attrs.push_back(std::move(a));
  }
  Relation out("MT", Schema(std::move(attrs)));
  for (const CandidatePair& c : matching_) {
    Row row;
    for (size_t i : r_key) row.push_back(r_entries_[c.r_id].extended[i]);
    for (size_t i : s_key) row.push_back(s_entries_[c.s_id].extended[i]);
    EID_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  return out;
}

PairPartition IncrementalIdentifier::Partition() const {
  RebuildMatching();
  PairPartition p;
  p.total = r_live_ * s_live_;
  p.matched = matching_.size();
  p.non_matched = negative_pairs_.size();
  p.undetermined =
      p.total - std::min(p.total, p.matched + p.non_matched);
  return p;
}

MatchDecision IncrementalIdentifier::Decide(size_t r_id, size_t s_id) const {
  RebuildMatching();
  for (const CandidatePair& c : matching_) {
    if (c.r_id == r_id && c.s_id == s_id) return MatchDecision::kMatch;
  }
  for (const CandidatePair& c : negative_pairs_) {
    if (c.r_id == r_id && c.s_id == s_id) return MatchDecision::kNonMatch;
  }
  return MatchDecision::kUndetermined;
}

Status IncrementalIdentifier::Uniqueness() const {
  RebuildMatching();
  return uniqueness_;
}

std::optional<size_t> IncrementalIdentifier::MatchOfR(size_t r_id) const {
  RebuildMatching();
  for (const CandidatePair& c : matching_) {
    if (c.r_id == r_id) return c.s_id;
  }
  return std::nullopt;
}

std::optional<size_t> IncrementalIdentifier::MatchOfS(size_t s_id) const {
  RebuildMatching();
  for (const CandidatePair& c : matching_) {
    if (c.s_id == s_id) return c.r_id;
  }
  return std::nullopt;
}

Relation IncrementalIdentifier::LiveR() const {
  Relation out(r_proto_.name() + "'", r_ext_schema_);
  for (const Entry& e : r_entries_) {
    if (e.alive) {
      Status st = out.Insert(e.extended);
      EID_CHECK(st.ok());
    }
  }
  return out;
}

Relation IncrementalIdentifier::LiveS() const {
  Relation out(s_proto_.name() + "'", s_ext_schema_);
  for (const Entry& e : s_entries_) {
    if (e.alive) {
      Status st = out.Insert(e.extended);
      EID_CHECK(st.ok());
    }
  }
  return out;
}

}  // namespace eid
