#include "eid/identifier.h"

namespace eid {

const char* MatchDecisionName(MatchDecision decision) {
  switch (decision) {
    case MatchDecision::kMatch: return "match";
    case MatchDecision::kNonMatch: return "non-match";
    case MatchDecision::kUndetermined: return "undetermined";
  }
  return "?";
}

MatchDecision IdentificationResult::Decide(size_t r_index,
                                           size_t s_index) const {
  TuplePair pair{r_index, s_index};
  if (matching.Contains(pair)) return MatchDecision::kMatch;
  if (negative.table.Contains(pair)) return MatchDecision::kNonMatch;
  return MatchDecision::kUndetermined;
}

Result<Relation> IdentificationResult::MatchingRelation(
    const std::string& name) const {
  return matching.ToRelation(r_extended, s_extended, name);
}

Result<Relation> IdentificationResult::NegativeRelation(
    const std::string& name) const {
  return negative.table.ToRelation(r_extended, s_extended, name);
}

Result<IdentificationResult> EntityIdentifier::Identify(
    const Relation& r, const Relation& s) const {
  IdentificationResult out;
  EID_RETURN_IF_ERROR(config_.correspondence.ValidateAgainst(r, s));

  // --- Extension + extended-key matching -------------------------------
  out.uniqueness = Status::Ok();
  if (config_.extended_key.has_value()) {
    EID_ASSIGN_OR_RETURN(
        MatcherResult matcher,
        BuildMatchingTable(r, s, config_.correspondence,
                           *config_.extended_key, config_.ilfds,
                           config_.matcher_options));
    out.r_extended = std::move(matcher.r_extension.extended);
    out.s_extended = std::move(matcher.s_extension.extended);
    out.r_traces = std::move(matcher.r_extension.traces);
    out.s_traces = std::move(matcher.s_extension.traces);
    out.matching = std::move(matcher.matching);
    out.uniqueness = std::move(matcher.uniqueness);
  } else {
    // No extended key: extend with every derivable attribute so the
    // explicit rules see the richest tuples.
    ExtensionOptions ext = config_.matcher_options.extension;
    ext.derive_all = true;
    EID_ASSIGN_OR_RETURN(ExtensionResult rx,
                         ExtendRelation(r, Side::kR, config_.correspondence,
                                        ExtendedKey(std::vector<std::string>{}),
                                        config_.ilfds, ext));
    EID_ASSIGN_OR_RETURN(ExtensionResult sx,
                         ExtendRelation(s, Side::kS, config_.correspondence,
                                        ExtendedKey(std::vector<std::string>{}),
                                        config_.ilfds, ext));
    out.r_extended = std::move(rx.extended);
    out.s_extended = std::move(sx.extended);
    out.r_traces = std::move(rx.traces);
    out.s_traces = std::move(sx.traces);
  }

  // --- Additional identity rules ----------------------------------------
  for (const IdentityRule& rule : config_.identity_rules) {
    EID_RETURN_IF_ERROR(rule.Validate());
  }
  if (!config_.identity_rules.empty()) {
    for (size_t i = 0; i < out.r_extended.size(); ++i) {
      TupleView e1 = out.r_extended.tuple(i);
      for (size_t j = 0; j < out.s_extended.size(); ++j) {
        TupleView e2 = out.s_extended.tuple(j);
        for (const IdentityRule& rule : config_.identity_rules) {
          // Rules quantify over all pairs; try both instantiation orders.
          if (rule.Matches(e1, e2) != Truth::kTrue &&
              rule.Matches(e2, e1) != Truth::kTrue) {
            continue;
          }
          Status st = out.matching.Add(TuplePair{i, j});
          if (!st.ok()) {
            if (config_.matcher_options.fail_on_uniqueness_violation) {
              return st;
            }
            if (out.uniqueness.ok()) out.uniqueness = st;
          }
          break;
        }
      }
    }
  }

  // --- Distinctness rules (explicit + Proposition 1 from ILFDs) ---------
  std::vector<DistinctnessRule> rules = config_.distinctness_rules;
  if (config_.distinctness_from_ilfds) {
    for (const Ilfd& f : config_.ilfds.ilfds()) {
      for (const Ilfd& single : [&] {
             std::vector<Ilfd> singles;
             for (const Atom& c : f.consequent()) {
               singles.push_back(Ilfd::Implies(f.antecedent(), c));
             }
             return singles;
           }()) {
        EID_ASSIGN_OR_RETURN(DistinctnessRule rule,
                             DistinctnessRuleFromIlfd(single));
        rules.push_back(std::move(rule));
      }
    }
  }
  EID_ASSIGN_OR_RETURN(
      out.negative,
      BuildNegativeMatchingTable(out.r_extended, out.s_extended, rules));

  // --- Constraint verification ------------------------------------------
  out.consistency =
      MatchTable::CheckConsistency(out.matching, out.negative.table);

  // --- Partition (Fig. 3) ------------------------------------------------
  out.partition.total = out.r_extended.size() * out.s_extended.size();
  out.partition.matched = out.matching.size();
  out.partition.non_matched = out.negative.table.size();
  // A pair in both tables (consistency violation) would be double-counted;
  // consistency status already reports that case.
  out.partition.undetermined =
      out.partition.total -
      std::min(out.partition.total,
               out.partition.matched + out.partition.non_matched);
  return out;
}

}  // namespace eid
