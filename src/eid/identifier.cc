#include "eid/identifier.h"

#include <algorithm>
#include <memory>

#include "analysis/analyzer.h"
#include "compile/pair_program.h"
#include "exec/blocking_index.h"
#include "exec/candidate_generator.h"

namespace eid {

const char* MatchDecisionName(MatchDecision decision) {
  switch (decision) {
    case MatchDecision::kMatch: return "match";
    case MatchDecision::kNonMatch: return "non-match";
    case MatchDecision::kUndetermined: return "undetermined";
  }
  return "?";
}

MatchDecision IdentificationResult::Decide(size_t r_index,
                                           size_t s_index) const {
  TuplePair pair{r_index, s_index};
  if (matching.Contains(pair)) return MatchDecision::kMatch;
  if (negative.table.Contains(pair)) return MatchDecision::kNonMatch;
  return MatchDecision::kUndetermined;
}

Result<Relation> IdentificationResult::MatchingRelation(
    const std::string& name) const {
  return matching.ToRelation(r_extended, s_extended, name);
}

Result<Relation> IdentificationResult::NegativeRelation(
    const std::string& name) const {
  return negative.table.ToRelation(r_extended, s_extended, name);
}

Result<IdentificationResult> EntityIdentifier::Identify(
    const Relation& r, const Relation& s) const {
  IdentificationResult out;
  EID_RETURN_IF_ERROR(config_.correspondence.ValidateAgainst(r, s));
  if (config_.matcher_options.analyze) {
    EID_RETURN_IF_ERROR(
        analysis::PreflightCheck(r.schema(), s.schema(), config_));
  }

  const int threads = exec::ResolveThreads(config_.matcher_options.threads);
  exec::ThreadPool pool(threads);
  exec::ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;

  // Session columnar world (exec/columnar_world.h): one dictionary and
  // one set of id columns shared by the extension, join and rule stages
  // below. Seeded from the snapshot when available, so a loaded world
  // starts with zero re-interning. Compiled path only; the interpreter
  // stays a world-free differential oracle.
  exec::ColumnarWorld columnar_world;
  exec::ColumnarWorld* world_ptr =
      config_.matcher_options.compile ? &columnar_world : nullptr;
  if (world_ptr != nullptr &&
      config_.matcher_options.columnar_seeds != nullptr) {
    columnar_world.Seed(*config_.matcher_options.columnar_seeds);
  }

  // --- Extension + extended-key matching -------------------------------
  out.uniqueness = Status::Ok();
  if (config_.extended_key.has_value()) {
    // BuildMatchingTable would create a second pool; inline its stages
    // on the shared one.
    MatcherOptions options = config_.matcher_options;
    options.threads = threads;
    options.analyze = false;  // the pre-flight above already ran
    EID_ASSIGN_OR_RETURN(
        MatcherResult matcher,
        BuildMatchingTable(r, s, config_.correspondence,
                           *config_.extended_key, config_.ilfds, options,
                           world_ptr));
    out.r_extended = std::move(matcher.r_extension.extended);
    out.s_extended = std::move(matcher.s_extension.extended);
    out.r_traces = std::move(matcher.r_extension.traces);
    out.s_traces = std::move(matcher.s_extension.traces);
    out.matching = std::move(matcher.matching);
    out.uniqueness = std::move(matcher.uniqueness);
    out.stats.Merge(matcher.stats);
  } else {
    // No extended key: extend with every derivable attribute so the
    // explicit rules see the richest tuples.
    ExtensionOptions ext = config_.matcher_options.extension;
    ext.derive_all = true;
    ext.compile = config_.matcher_options.compile;
    exec::StageStats extend_r, extend_s;
    EID_ASSIGN_OR_RETURN(ExtensionResult rx,
                         ExtendRelation(r, Side::kR, config_.correspondence,
                                        ExtendedKey(std::vector<std::string>{}),
                                        config_.ilfds, ext, pool_ptr,
                                        &extend_r, world_ptr));
    EID_ASSIGN_OR_RETURN(ExtensionResult sx,
                         ExtendRelation(s, Side::kS, config_.correspondence,
                                        ExtendedKey(std::vector<std::string>{}),
                                        config_.ilfds, ext, pool_ptr,
                                        &extend_s, world_ptr));
    out.r_extended = std::move(rx.extended);
    out.s_extended = std::move(sx.extended);
    out.r_traces = std::move(rx.traces);
    out.s_traces = std::move(sx.traces);
    out.stats.Add(std::move(extend_r));
    out.stats.Add(std::move(extend_s));
  }

  // --- Additional identity rules ----------------------------------------
  for (const IdentityRule& rule : config_.identity_rules) {
    EID_RETURN_IF_ERROR(rule.Validate());
  }
  exec::ColumnIndexCache r_index(&out.r_extended);
  exec::ColumnIndexCache s_index(&out.s_extended);
  if (!config_.identity_rules.empty()) {
    exec::StageTimer timer;
    exec::StageStats identity;
    identity.stage = "identity_rules";
    identity.threads = threads;
    identity.cross_product = out.r_extended.size() * out.s_extended.size();
    // The serial sweep adds pair (i, j) iff *some* rule matches in some
    // orientation, visiting pairs row-major. The rule → pair-set union is
    // orientation- and rule-order-independent, so collect per rule with
    // index-bounded parallel scans, then insert the deduplicated union in
    // row-major order — the exact serial insertion sequence, which the
    // order-sensitive uniqueness verdict depends on.
    const bool compile = config_.matcher_options.compile;
    std::vector<TuplePair> fired;
    if (config_.matcher_options.staged) {
      // Staged sweep: one pass over all rule orientations; the stamped
      // emission already yields the deduplicated union in row-major
      // order, so no sort/unique pass is needed.
      std::vector<exec::BlockingPlan> plans;
      plans.reserve(config_.identity_rules.size() * 2);
      for (const IdentityRule& rule : config_.identity_rules) {
        for (bool flipped : {false, true}) {
          plans.push_back(exec::PlanBlocking(rule.predicates(),
                                             out.r_extended.schema(),
                                             out.s_extended.schema(),
                                             flipped));
        }
      }
      std::vector<std::unique_ptr<exec::StagedEvaluator>> evaluators(
          plans.size());
      EID_SHARED_IMMUTABLE std::unique_ptr<compile::PairFeatureCache> features;
      const double encode_ms_before =
          world_ptr != nullptr ? world_ptr->encode_ms() : 0.0;
      const size_t reuse_before =
          world_ptr != nullptr ? world_ptr->reuse_hits() : 0;
      if (compile) {
        exec::StageTimer compile_timer;
        features =
            world_ptr != nullptr
                ? std::make_unique<compile::PairFeatureCache>(
                      &out.r_extended, &out.s_extended, world_ptr,
                      exec::WorldRel::kRExtended, exec::WorldRel::kSExtended)
                : std::make_unique<compile::PairFeatureCache>(
                      &out.r_extended, &out.s_extended);
        for (size_t k = 0; k < config_.identity_rules.size(); ++k) {
          for (bool flipped : {false, true}) {
            const size_t i = k * 2 + (flipped ? 1 : 0);
            if (plans[i].impossible) continue;
            evaluators[i] = std::make_unique<compile::StagedConjunction>(
                compile::StagedConjunction::Compile(
                    config_.identity_rules[k].predicates(),
                    plans[i].coverage, out.r_extended, out.s_extended,
                    flipped, features.get()));
          }
        }
        identity.compile_ms = compile_timer.ElapsedMs();
        identity.interner_values = features->distinct_values();
      } else {
        for (size_t k = 0; k < config_.identity_rules.size(); ++k) {
          for (bool flipped : {false, true}) {
            const size_t i = k * 2 + (flipped ? 1 : 0);
            if (plans[i].impossible) continue;
            evaluators[i] = std::make_unique<exec::InterpretedResidual>(
                config_.identity_rules[k].predicates(), plans[i].coverage,
                &out.r_extended, &out.s_extended, flipped);
          }
        }
      }
      exec::CandidateGenerator gen(&out.r_extended, &out.s_extended,
                                   &r_index, &s_index,
                                   config_.matcher_options.amq_seeds.get(),
                                   exec::AmqOptions{}, world_ptr,
                                   config_.matcher_options.block_eval);
      for (size_t i = 0; i < plans.size(); ++i) {
        gen.AddRule(plans[i], evaluators[i].get());
      }
      exec::StagedScanStats scan;
      std::vector<exec::FiredPair> staged_fired = gen.Run(pool_ptr, &scan);
      identity.candidate_pairs = scan.candidate_pairs;
      identity.rule_evals = scan.rule_evals;
      identity.amq_rejects = scan.amq_rejects;
      identity.feature_cache_hits = scan.feature_cache_hits;
      identity.pair_blocks = scan.pair_blocks;
      identity.block_early_exits = scan.block_early_exits;
      identity.block_scalar_fallbacks = scan.block_scalar_fallbacks;
      if (world_ptr != nullptr) {
        identity.columnar_encode_ms =
            world_ptr->encode_ms() - encode_ms_before;
        identity.interner_reuse_hits =
            world_ptr->reuse_hits() - reuse_before;
      }
      fired.reserve(staged_fired.size());
      for (const exec::FiredPair& f : staged_fired) fired.push_back(f.pair);
    } else {
      std::vector<compile::CompiledConjunction> programs;
      if (compile) {
        exec::StageTimer compile_timer;
        programs.reserve(config_.identity_rules.size() * 2);
        for (const IdentityRule& rule : config_.identity_rules) {
          for (bool flipped : {false, true}) {
            programs.push_back(compile::CompiledConjunction::Compile(
                rule.predicates(), out.r_extended.schema(),
                out.s_extended.schema(), flipped));
          }
        }
        identity.compile_ms = compile_timer.ElapsedMs();
      }
      for (size_t k = 0; k < config_.identity_rules.size(); ++k) {
        const IdentityRule& rule = config_.identity_rules[k];
        for (bool flipped : {false, true}) {
          exec::PairScanStats scan;
          const exec::PairEvaluator* evaluator =
              compile ? &programs[k * 2 + (flipped ? 1 : 0)] : nullptr;
          std::vector<TuplePair> pairs = exec::CollectTruePairs(
              out.r_extended, out.s_extended, rule.predicates(), flipped,
              r_index, s_index, pool_ptr, &scan, evaluator);
          identity.candidate_pairs += scan.candidate_pairs;
          identity.rule_evals += scan.rule_evals;
          fired.insert(fired.end(), pairs.begin(), pairs.end());
        }
      }
      std::sort(fired.begin(), fired.end());
      fired.erase(std::unique(fired.begin(), fired.end()), fired.end());
    }
    for (const TuplePair& pair : fired) {
      Status st = out.matching.Add(pair);
      if (!st.ok()) {
        if (config_.matcher_options.fail_on_uniqueness_violation) {
          return st;
        }
        if (out.uniqueness.ok()) out.uniqueness = st;
      }
    }
    identity.items = fired.size();
    identity.wall_ms = timer.ElapsedMs();
    out.stats.Add(std::move(identity));
  }

  // --- Distinctness rules (explicit + Proposition 1 from ILFDs) ---------
  std::vector<DistinctnessRule> rules = config_.distinctness_rules;
  if (config_.distinctness_from_ilfds) {
    for (const Ilfd& f : config_.ilfds.ilfds()) {
      for (const Ilfd& single : [&] {
             std::vector<Ilfd> singles;
             for (const Atom& c : f.consequent()) {
               singles.push_back(Ilfd::Implies(f.antecedent(), c));
             }
             return singles;
           }()) {
        EID_ASSIGN_OR_RETURN(DistinctnessRule rule,
                             DistinctnessRuleFromIlfd(single));
        rules.push_back(std::move(rule));
      }
    }
  }
  EID_ASSIGN_OR_RETURN(
      out.negative,
      BuildNegativeMatchingTable(out.r_extended, out.s_extended, rules,
                                 pool_ptr, config_.matcher_options.compile,
                                 config_.matcher_options.staged,
                                 config_.matcher_options.amq_seeds.get(),
                                 world_ptr,
                                 config_.matcher_options.block_eval));
  out.stats.Add(out.negative.stats);

  // --- Constraint verification ------------------------------------------
  out.consistency =
      MatchTable::CheckConsistency(out.matching, out.negative.table);

  // --- Partition (Fig. 3) ------------------------------------------------
  out.partition.total = out.r_extended.size() * out.s_extended.size();
  out.partition.matched = out.matching.size();
  out.partition.non_matched = out.negative.table.size();
  // A pair in both tables (consistency violation) would be double-counted;
  // consistency status already reports that case.
  out.partition.undetermined =
      out.partition.total -
      std::min(out.partition.total,
               out.partition.matched + out.partition.non_matched);
  return out;
}

}  // namespace eid
