// Attribute correspondence between autonomous relations and the
// integrated world.
//
// The paper assumes schema-level heterogeneity is resolved a priori (§1):
// which attributes of R and S are semantically equivalent is known (e.g.
// from schema-integration techniques [Larson et al.]). They may still carry
// different local names — the prototype's r_name and s_name both model the
// world attribute Name. An AttributeCorrespondence records, for each
// *world* attribute, its name in R and/or S. Extended keys, ILFDs, and
// identity/distinctness rules are all phrased in world attribute names.

#ifndef EID_EID_CORRESPONDENCE_H_
#define EID_EID_CORRESPONDENCE_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/relation.h"

namespace eid {

/// Which source relation a mapping refers to.
enum class Side { kR, kS };

/// One world attribute and its local names.
struct AttributeMapping {
  std::string world;                  // name in the integrated world
  std::optional<std::string> in_r;    // name in relation R, if modeled
  std::optional<std::string> in_s;    // name in relation S, if modeled
};

/// The schema-integration output this library consumes.
class AttributeCorrespondence {
 public:
  AttributeCorrespondence() = default;
  explicit AttributeCorrespondence(std::vector<AttributeMapping> mappings)
      : mappings_(std::move(mappings)) {}

  /// Identity correspondence: every attribute of R and S maps to a world
  /// attribute of the same name (the common case after schema integration
  /// has normalised names).
  static AttributeCorrespondence Identity(const Relation& r,
                                          const Relation& s);

  const std::vector<AttributeMapping>& mappings() const { return mappings_; }

  /// Adds a mapping; error on duplicate world names.
  Status Add(AttributeMapping mapping);

  /// The mapping for a world attribute, if any.
  const AttributeMapping* Find(const std::string& world) const;

  /// World attributes modeled (non-NULL-named) on the given side.
  std::vector<std::string> WorldAttributesOf(Side side) const;

  /// World attributes modeled on *both* sides — the candidate attributes
  /// the prototype's setup_extkey lists for extended-key selection.
  std::vector<std::string> CommonWorldAttributes() const;

  /// Local name of a world attribute on `side`; nullopt when not modeled.
  std::optional<std::string> LocalName(const std::string& world,
                                       Side side) const;

  /// Verifies every local name exists in the corresponding relation schema.
  Status ValidateAgainst(const Relation& r, const Relation& s) const;

  /// Renames `relation`'s mapped attributes to world names; unmapped
  /// attributes keep their local names (they must not collide with world
  /// names). This produces the uniform naming the matching pipeline uses.
  Result<Relation> ToWorldNaming(const Relation& relation, Side side) const;

  /// Schema-only ToWorldNaming: the renamed relation with its keys
  /// re-declared but no rows copied. Renaming never changes values or
  /// column positions, so pipelines that read cells positionally (the
  /// columnar extension path) use this and index the source rows
  /// directly, skipping the full-relation copy. Same name computation
  /// and collision diagnostics as ToWorldNaming.
  Result<Relation> ToWorldSchema(const Relation& relation, Side side) const;

 private:
  Result<std::vector<std::string>> WorldNames(const Relation& relation,
                                              Side side) const;

  std::vector<AttributeMapping> mappings_;
};

}  // namespace eid

#endif  // EID_EID_CORRESPONDENCE_H_
