#include "eid/negative.h"

namespace eid {

Result<NegativeResult> BuildNegativeMatchingTable(
    const Relation& r_extended, const Relation& s_extended,
    const std::vector<DistinctnessRule>& rules) {
  for (const DistinctnessRule& rule : rules) {
    EID_RETURN_IF_ERROR(rule.Validate());
  }
  NegativeResult out;
  for (size_t i = 0; i < r_extended.size(); ++i) {
    TupleView e1 = r_extended.tuple(i);
    for (size_t j = 0; j < s_extended.size(); ++j) {
      TupleView e2 = s_extended.tuple(j);
      for (size_t k = 0; k < rules.size(); ++k) {
        bool direct = rules[k].Applies(e1, e2) == Truth::kTrue;
        bool flipped = !direct && rules[k].Applies(e2, e1) == Truth::kTrue;
        if (direct || flipped) {
          TuplePair pair{i, j};
          if (!out.table.Contains(pair)) {
            EID_RETURN_IF_ERROR(out.table.Add(pair));
            out.evidence.push_back(NegativePairEvidence{pair, k, flipped});
          }
          break;  // one certificate per pair suffices
        }
      }
    }
  }
  return out;
}

}  // namespace eid
