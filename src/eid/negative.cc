#include "eid/negative.h"

#include <map>
#include <memory>
#include <utility>

#include "compile/pair_program.h"
#include "exec/blocking_index.h"
#include "exec/candidate_generator.h"

namespace eid {

Result<NegativeResult> BuildNegativeMatchingTable(
    const Relation& r_extended, const Relation& s_extended,
    const std::vector<DistinctnessRule>& rules) {
  return BuildNegativeMatchingTable(r_extended, s_extended, rules,
                                    /*pool=*/nullptr);
}

Result<NegativeResult> BuildNegativeMatchingTable(
    const Relation& r_extended, const Relation& s_extended,
    const std::vector<DistinctnessRule>& rules, exec::ThreadPool* pool,
    bool compile, bool staged, const exec::AmqSeeds* amq_seeds,
    exec::ColumnarWorld* world, bool block_eval) {
  exec::StageTimer timer;
  for (const DistinctnessRule& rule : rules) {
    EID_RETURN_IF_ERROR(rule.Validate());
  }
  NegativeResult out;
  out.stats.stage = "distinctness_rules";
  out.stats.threads = pool != nullptr ? pool->threads() : 1;
  out.stats.cross_product = r_extended.size() * s_extended.size();

  // The serial sweep visits pairs row-major and keeps, per pair, the
  // first rule that fires — direct orientation tried before flipped.
  // Reproduce that exactly: collect each rule/orientation's true pairs
  // (index-bounded, parallel), then fold them in (rule, orientation)
  // priority order with first-insert-wins, and emit sorted row-major.
  exec::ColumnIndexCache r_index(&r_extended);
  exec::ColumnIndexCache s_index(&s_extended);

  if (staged) {
    // Staged candidate generation: one r-major sweep over all rule
    // orientations, registered in the same (rule, flipped) priority
    // order the oracle folds in — the generator's min-priority-wins
    // emission then reproduces the fold bit-identically.
    std::vector<exec::BlockingPlan> plans;
    plans.reserve(rules.size() * 2);
    for (const DistinctnessRule& rule : rules) {
      for (bool flipped : {false, true}) {
        plans.push_back(exec::PlanBlocking(rule.predicates(),
                                           r_extended.schema(),
                                           s_extended.schema(), flipped));
      }
    }
    std::vector<std::unique_ptr<exec::StagedEvaluator>> evaluators(
        plans.size());
    EID_SHARED_IMMUTABLE std::unique_ptr<compile::PairFeatureCache> features;
    const double encode_ms_before =
        world != nullptr ? world->encode_ms() : 0.0;
    const size_t reuse_before = world != nullptr ? world->reuse_hits() : 0;
    if (compile) {
      exec::StageTimer compile_timer;
      features =
          world != nullptr
              ? std::make_unique<compile::PairFeatureCache>(
                    &r_extended, &s_extended, world,
                    exec::WorldRel::kRExtended, exec::WorldRel::kSExtended)
              : std::make_unique<compile::PairFeatureCache>(&r_extended,
                                                            &s_extended);
      for (size_t k = 0; k < rules.size(); ++k) {
        for (bool flipped : {false, true}) {
          const size_t i = k * 2 + (flipped ? 1 : 0);
          if (plans[i].impossible) continue;
          evaluators[i] = std::make_unique<compile::StagedConjunction>(
              compile::StagedConjunction::Compile(
                  rules[k].predicates(), plans[i].coverage, r_extended,
                  s_extended, flipped, features.get()));
        }
      }
      out.stats.compile_ms = compile_timer.ElapsedMs();
      out.stats.interner_values = features->distinct_values();
    } else {
      for (size_t k = 0; k < rules.size(); ++k) {
        for (bool flipped : {false, true}) {
          const size_t i = k * 2 + (flipped ? 1 : 0);
          if (plans[i].impossible) continue;
          evaluators[i] = std::make_unique<exec::InterpretedResidual>(
              rules[k].predicates(), plans[i].coverage, &r_extended,
              &s_extended, flipped);
        }
      }
    }

    exec::CandidateGenerator gen(&r_extended, &s_extended, &r_index,
                                 &s_index, amq_seeds, exec::AmqOptions{},
                                 compile ? world : nullptr, block_eval);
    for (size_t i = 0; i < plans.size(); ++i) {
      gen.AddRule(plans[i], evaluators[i].get());
    }
    exec::StagedScanStats scan;
    std::vector<exec::FiredPair> fired = gen.Run(pool, &scan);
    out.stats.candidate_pairs = scan.candidate_pairs;
    out.stats.rule_evals = scan.rule_evals;
    out.stats.amq_rejects = scan.amq_rejects;
    out.stats.feature_cache_hits = scan.feature_cache_hits;
    out.stats.pair_blocks = scan.pair_blocks;
    out.stats.block_early_exits = scan.block_early_exits;
    out.stats.block_scalar_fallbacks = scan.block_scalar_fallbacks;
    if (compile && world != nullptr) {
      out.stats.columnar_encode_ms = world->encode_ms() - encode_ms_before;
      out.stats.interner_reuse_hits = world->reuse_hits() - reuse_before;
    }
    // The generator emits unique pairs in sorted row-major order, so the
    // batch fold stays on the table's sorted fast path: a pure append
    // with no membership hashing — building a probe table over a dense
    // NMT's tens of millions of pairs dominated dense `identify` runs.
    if (!fired.empty()) {
      EID_RETURN_IF_ERROR(out.table.AddNegativeBatch(
          &fired.front().pair, fired.size(), sizeof(exec::FiredPair)));
    }
    out.evidence.reserve(fired.size());
    for (const exec::FiredPair& f : fired) {
      out.evidence.push_back(NegativePairEvidence{
          f.pair, f.priority / 2, (f.priority & 1) != 0});
    }
    out.stats.items = out.table.size();
    out.stats.wall_ms = timer.ElapsedMs();
    return out;
  }

  // Bind every rule antecedent to the two schemas once per orientation;
  // the sweep then evaluates candidates without name lookups.
  std::vector<compile::CompiledConjunction> programs;
  if (compile) {
    exec::StageTimer compile_timer;
    programs.reserve(rules.size() * 2);
    for (const DistinctnessRule& rule : rules) {
      for (bool flipped : {false, true}) {
        programs.push_back(compile::CompiledConjunction::Compile(
            rule.predicates(), r_extended.schema(), s_extended.schema(),
            flipped));
      }
    }
    out.stats.compile_ms = compile_timer.ElapsedMs();
  }

  std::map<TuplePair, std::pair<size_t, bool>> best;  // pair -> (rule, flipped)
  for (size_t k = 0; k < rules.size(); ++k) {
    const std::vector<Predicate>& preds = rules[k].predicates();
    for (bool flipped : {false, true}) {
      exec::PairScanStats scan;
      const exec::PairEvaluator* evaluator =
          compile ? &programs[k * 2 + (flipped ? 1 : 0)] : nullptr;
      std::vector<TuplePair> fired =
          exec::CollectTruePairs(r_extended, s_extended, preds, flipped,
                                 r_index, s_index, pool, &scan, evaluator);
      out.stats.candidate_pairs += scan.candidate_pairs;
      out.stats.rule_evals += scan.rule_evals;
      for (const TuplePair& p : fired) {
        best.emplace(p, std::make_pair(k, flipped));  // first wins
      }
    }
  }
  for (const auto& [pair, certificate] : best) {
    EID_RETURN_IF_ERROR(out.table.Add(pair));
    out.evidence.push_back(
        NegativePairEvidence{pair, certificate.first, certificate.second});
  }
  out.stats.items = out.table.size();
  out.stats.wall_ms = timer.ElapsedMs();
  return out;
}

}  // namespace eid
