// Relation extension: R → R' (paper §4.2, step 1–2).
//
// "Extend relation R, to R', with attributes K_Ext−R and set the missing
// attribute values of each tuple to be NULL. … Apply the available ILFDs
// to derive the values for K_Ext−R for each R' tuple."
//
// The relation is first renamed into world attribute naming (so ILFDs,
// which are constraints on real-world entities, apply directly), then the
// missing extended-key columns are appended as NULL, then each tuple's
// missing values are derived. Derivations may also *overwrite nothing*:
// existing non-NULL values always win (the sources are assumed accurate,
// §3.1).

#ifndef EID_EID_EXTENSION_H_
#define EID_EID_EXTENSION_H_

#include <vector>

#include "eid/correspondence.h"
#include "eid/extended_key.h"
#include "exec/columnar_world.h"
#include "exec/stage_stats.h"
#include "exec/thread_pool.h"
#include "ilfd/derivation.h"

namespace eid {

/// Result of extending one relation.
struct ExtensionResult {
  /// R' — world naming, original attributes plus the added K_Ext−R
  /// columns, missing values derived where ILFDs allow.
  Relation extended;
  /// Per-row derivation traces (parallel to extended.rows()).
  std::vector<Derivation> traces;
  /// Names of columns that were added (K_Ext−R).
  std::vector<std::string> added_attributes;
};

/// Options for ExtendRelation.
struct ExtensionOptions {
  DerivationOptions derivation;
  /// Derive values for *every* missing world attribute any ILFD can
  /// produce, not only extended-key columns; the integrated table then
  /// carries the richer tuples. Default mirrors the paper: only K_Ext
  /// columns are added.
  bool derive_all = false;
  /// Parallelism for the per-tuple derivation loop. 0 resolves via
  /// EID_THREADS, then hardware concurrency (exec::ResolveThreads); 1 is
  /// the serial engine. Results are identical for every value.
  int threads = 0;
  /// Lower the ILFD program once per call (compile::DerivationProgram)
  /// and run every tuple through the compiled form with a per-worker
  /// derivation memo. Off runs the per-tuple interpreter, which is kept
  /// as a differential-testing oracle; results are bit-identical.
  bool compile = true;
};

/// Builds R' from `relation` (one side of the match).
Result<ExtensionResult> ExtendRelation(const Relation& relation, Side side,
                                       const AttributeCorrespondence& corr,
                                       const ExtendedKey& ext_key,
                                       const IlfdSet& ilfds,
                                       const ExtensionOptions& options = {});

/// Pool-sharing form used by the engine: per-tuple derivation is sharded
/// over `pool` (one ClosureEvaluator per worker; may be null for the
/// serial path), and stage counters are recorded into `stats` when
/// non-null. `options.threads` is ignored — the pool decides.
///
/// With a non-null `columnar` (and options.compile), the session's
/// columnar world drives the sweep (DESIGN.md §4g): source cells are
/// encoded once into the shared dictionary under the side's base slot,
/// the derivation memo keys and closure seeds gather pre-encoded ids,
/// renaming into world naming is schema-only (no row copy), and on the
/// clean path the extended relation is assembled by AdoptRows after an
/// id-level re-validation (write types, key NULLs, key uniqueness over
/// packed id keys) — falling back to the exact per-row Insert replay the
/// moment anything looks off, so diagnostics and error precedence stay
/// bit-identical to the serial engine. The extended relation's id
/// columns are adopted into the side's extended slot for the join and
/// rule stages to reuse. Results are identical with or without a world.
Result<ExtensionResult> ExtendRelation(const Relation& relation, Side side,
                                       const AttributeCorrespondence& corr,
                                       const ExtendedKey& ext_key,
                                       const IlfdSet& ilfds,
                                       const ExtensionOptions& options,
                                       exec::ThreadPool* pool,
                                       exec::StageStats* stats,
                                       exec::ColumnarWorld* columnar = nullptr);

}  // namespace eid

#endif  // EID_EID_EXTENSION_H_
