// Negative matching table construction via distinctness rules (paper §4.1,
// Proposition 1 and Table 4).
//
// Every pair of (extended) tuples for which some distinctness rule's
// antecedent evaluates to true is a known-distinct pair. The paper notes
// the number of non-matching pairs is usually far larger than matching
// pairs, so NMT_RS is conceptual; this module materialises exactly the
// pairs the supplied rules certify, which is what consistency checking and
// the three-valued decision function need.
//
// Evaluation is index-accelerated (src/exec/blocking_index.h): each
// rule's equality conjuncts bound its candidate pairs, and candidates
// are swept in parallel. The resulting table, evidence list and ordering
// are identical to the serial nested-loop sweep for any thread count.

#ifndef EID_EID_NEGATIVE_H_
#define EID_EID_NEGATIVE_H_

#include <vector>

#include "eid/match_tables.h"
#include "exec/stage_stats.h"
#include "exec/thread_pool.h"
#include "rules/distinctness_rule.h"

namespace eid {

namespace exec {
struct AmqSeeds;
class ColumnarWorld;
}  // namespace exec

/// Provenance of one negative pair: which rule certified it, and in which
/// orientation. Rules quantify over all entity pairs (∀e1,e2), so both
/// instantiations (e1:=r-tuple, e2:=s-tuple) and (e1:=s-tuple, e2:=r-tuple)
/// are checked; `flipped` records that the second one fired.
struct NegativePairEvidence {
  TuplePair pair;
  size_t rule_index = 0;
  bool flipped = false;
};

/// Result of negative-table construction.
struct NegativeResult {
  MatchTable table{/*negative=*/true};
  std::vector<NegativePairEvidence> evidence;
  /// Counters of the sweep ("distinctness_rules" stage).
  exec::StageStats stats;
};

/// Evaluates every rule over every pair of rows of the two (extended,
/// world-named) relations. Rules must be well-formed (Validate() is
/// called; the first invalid rule fails the build).
Result<NegativeResult> BuildNegativeMatchingTable(
    const Relation& r_extended, const Relation& s_extended,
    const std::vector<DistinctnessRule>& rules);

/// Pool-sharing form used by the engine (null pool = serial sweep).
/// `compile` lowers each rule antecedent to a compiled program per
/// orientation before the sweep (src/compile/pair_program.h); off
/// re-resolves attribute names per pair. `staged` runs the sweep through
/// the staged candidate generator (exec/candidate_generator.h: blocking
/// intersection, AMQ pre-filters, hoisted row features); off is the
/// exhaustive per-rule sweep kept as a differential oracle. The fired
/// pairs, evidence and ordering are identical on every path. `amq_seeds`
/// (optional, staged path only) pre-seeds the candidate generator's AMQ
/// filters from snapshot fingerprint arrays instead of row scans.
/// `world` (optional, compiled staged path only) is the session's
/// columnar world with the extended relations under the kRExtended /
/// kSExtended slots: the feature cache and the generator then read the
/// shared id columns instead of re-encoding private copies. `block_eval`
/// (staged path only) drains residual candidates in fixed-size
/// PairTruthBlock batches; off evaluates one scalar PairTruth per pair —
/// the block path's differential oracle, identical output either way.
Result<NegativeResult> BuildNegativeMatchingTable(
    const Relation& r_extended, const Relation& s_extended,
    const std::vector<DistinctnessRule>& rules, exec::ThreadPool* pool,
    bool compile = true, bool staged = true,
    const exec::AmqSeeds* amq_seeds = nullptr,
    exec::ColumnarWorld* world = nullptr, bool block_eval = true);

}  // namespace eid

#endif  // EID_EID_NEGATIVE_H_
