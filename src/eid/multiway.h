// N-way entity identification (paper §1: "taking two (or more)
// independently developed databases and resolving the differences").
//
// Given k relations — all in world attribute naming, each modeling a
// subset of one entity type — every pair is identified with the same
// extended-key + ILFD machinery, and the pairwise matches are closed into
// entity *clusters* (connected components of the match graph). Two audits
// extend the paper's §3.2 constraints to the k-way setting:
//
//  * transitivity — a cluster containing two tuples of the same relation
//    is an error: the paper assumes no relation models one entity twice,
//    so pairwise matches that chain into such a cluster contradict each
//    other (a symptom of an unsound extended key);
//  * consistency — no certified-distinct (NMT) pair may end up inside one
//    cluster, directly or by transitive merging.
//
// The k-way integrated table has one row per cluster, coalescing the
// members' attribute values (conflicting non-NULL values surface as an
// attribute-value conflict error, as in the merged two-way layout).

#ifndef EID_EID_MULTIWAY_H_
#define EID_EID_MULTIWAY_H_

#include <vector>

#include "eid/identifier.h"

namespace eid {

/// One tuple in the k-way setting.
struct MemberRef {
  size_t relation_index = 0;
  size_t row_index = 0;

  bool operator==(const MemberRef& other) const {
    return relation_index == other.relation_index &&
           row_index == other.row_index;
  }
  bool operator<(const MemberRef& other) const {
    if (relation_index != other.relation_index) {
      return relation_index < other.relation_index;
    }
    return row_index < other.row_index;
  }
};

/// A maximal set of tuples identified as one entity (singletons included).
struct EntityCluster {
  std::vector<MemberRef> members;  // sorted
};

/// Configuration shared by every pairwise identification.
struct MultiwayConfig {
  ExtendedKey extended_key;
  IlfdSet ilfds;
  std::vector<IdentityRule> identity_rules;
  std::vector<DistinctnessRule> distinctness_rules;
  bool distinctness_from_ilfds = true;
  ExtensionOptions extension;
};

/// Outcome of a k-way identification.
struct MultiwayResult {
  /// Extended relations, parallel to the input sources.
  std::vector<Relation> extended;
  /// Entity clusters covering every tuple (sorted by first member).
  std::vector<EntityCluster> clusters;
  /// Certified-distinct pairs across all relation pairs.
  std::vector<std::pair<MemberRef, MemberRef>> distinct_pairs;
  /// OK unless some cluster holds two tuples of one relation.
  Status transitivity;
  /// OK unless a distinct pair fell inside one cluster.
  Status consistency;

  bool Sound() const { return transitivity.ok() && consistency.ok(); }

  /// Clusters with at least two members (the actual matches).
  std::vector<const EntityCluster*> MergedClusters() const;
};

/// Runs k-way identification. `sources` must all be in world naming (use
/// AttributeCorrespondence::ToWorldNaming first when local names differ)
/// and share the entity type. Requires k ≥ 2.
Result<MultiwayResult> IdentifyAll(const std::vector<Relation>& sources,
                                   const MultiwayConfig& config);

/// The k-way integrated table: one row per cluster, one column per world
/// attribute (union over sources), members' values coalesced. Error on
/// attribute-value conflicts inside a cluster.
Result<Relation> BuildMultiwayIntegratedTable(
    const std::vector<Relation>& sources, const MultiwayResult& result,
    const std::string& name = "T_multi");

}  // namespace eid

#endif  // EID_EID_MULTIWAY_H_
