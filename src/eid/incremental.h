// Incremental entity identification under updates (paper §2):
//
// "In the case of federated databases, participating database systems can
// continue to operate autonomously. Instance integration may have to be
// performed whenever updating is done on the participating databases."
//
// IncrementalIdentifier keeps the identification state live across
// insertions and deletions on either source relation:
//
//  * inserting a tuple extends just that tuple (one ILFD derivation),
//    probes the other side's extended-key hash index for match candidates,
//    and evaluates the distinctness rules against the other side only —
//    O(|other side|) worst case instead of the full O(|R|·|S|) recompute;
//  * deleting a tuple retracts its pairs; a candidate match that was
//    previously shadowed by the uniqueness constraint can surface again,
//    because all *candidate* pairs are retained and the matching table is
//    re-derived from them (greedy in deterministic key order, matching
//    batch semantics);
//  * the state is always equivalent to a from-scratch
//    EntityIdentifier::Identify over the live tuples (tested property).
//
// Identity rules beyond extended-key equivalence are supported the same
// way distinctness rules are: evaluated pairwise against the other side on
// insert.

#ifndef EID_EID_INCREMENTAL_H_
#define EID_EID_INCREMENTAL_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "compile/derivation_program.h"
#include "compile/pair_program.h"
#include "eid/identifier.h"
#include "exec/amq_filter.h"
#include "exec/blocking_index.h"

namespace eid {

/// Live identification over mutating source relations.
class IncrementalIdentifier {
 public:
  /// `config` as for EntityIdentifier; both relations start empty with the
  /// given schemas/keys (copy empty Relations carrying DeclareKey state).
  /// Error when the config is invalid (bad rules, missing ext-key
  /// attributes in the correspondence).
  static Result<IncrementalIdentifier> Create(IdentifierConfig config,
                                              Relation empty_r,
                                              Relation empty_s);

  /// Inserts a tuple into R (S). Returns the tuple's stable id. Errors on
  /// schema/key violations or derivation conflicts; the state is unchanged
  /// on error.
  Result<size_t> InsertR(Row row);
  Result<size_t> InsertS(Row row);

  /// Deletes a previously inserted tuple by its stable id. Idempotent
  /// error (NotFound) for unknown/already-deleted ids.
  Status DeleteR(size_t id);
  Status DeleteS(size_t id);

  /// Live tuple counts.
  size_t r_size() const { return r_live_; }
  size_t s_size() const { return s_live_; }

  /// Current matching table as a printable relation (R-key columns then
  /// S-key columns, like MatchTable::ToRelation).
  Result<Relation> MatchingRelation() const;

  /// Current decided-pair partition over live tuples.
  PairPartition Partition() const;

  /// Decision for a pair of live tuple ids.
  MatchDecision Decide(size_t r_id, size_t s_id) const;

  /// OK while no uniqueness violation exists among live candidates.
  Status Uniqueness() const;

  /// The matched S id for a live R id, if any (and vice versa).
  std::optional<size_t> MatchOfR(size_t r_id) const;
  std::optional<size_t> MatchOfS(size_t s_id) const;

  /// Extended live relations (compacted; row order = id order). For
  /// equivalence checks against batch identification.
  Relation LiveR() const;
  Relation LiveS() const;

 private:
  IncrementalIdentifier() = default;

  struct Entry {
    Row base;      // original tuple
    Row extended;  // world naming + K_ext columns
    bool alive = false;
    std::string ext_key_fingerprint;  // empty when any K_ext value is NULL
  };

  /// Candidate matched pair by stable ids (certified by ext-key equality
  /// or an identity rule).
  struct CandidatePair {
    size_t r_id;
    size_t s_id;
  };

  Result<size_t> Insert(Side side, Row row);
  Status Delete(Side side, size_t id);
  /// Recomputes matching_ from candidates_ (greedy in (r_id, s_id) order).
  void RebuildMatching() const;

  IdentifierConfig config_;
  Relation r_proto_, s_proto_;        // empty schema/key carriers
  Schema r_ext_schema_, s_ext_schema_;
  std::vector<std::string> r_added_, s_added_;  // K_ext−R / K_ext−S
  std::vector<DistinctnessRule> all_distinctness_;

  // Compiled execution state, built once in Create when
  // matcher_options.compile (null/empty otherwise). The derivation
  // programs live on the heap so the evaluators' knowledge-base pointers
  // survive moves of the identifier. Rule programs are rule-major, direct
  // orientation before flipped — the interpreter's evaluation order.
  std::unique_ptr<compile::DerivationProgram> r_derive_, s_derive_;
  // The session is single-threaded, so its one "worker" owns the
  // evaluator/memo pair per side (EID_PER_WORKER by construction).
  EID_PER_WORKER std::unique_ptr<ClosureEvaluator> r_eval_, s_eval_;
  EID_PER_WORKER compile::DerivationMemo r_memo_, s_memo_;
  std::vector<compile::CompiledConjunction> identity_programs_;
  std::vector<compile::CompiledConjunction> distinct_programs_;

  // Staged per-insert acceleration (matcher_options.staged), built in
  // Create: one BlockingPlan per (rule, orientation) against the
  // extended schemas, the union of columns those plans bucket on, and —
  // maintained per live tuple — dynamic per-column value indexes plus an
  // AMQ filter per side (one fingerprint copy per row so Delete can
  // erase its copy). An insert then consults only the other side's
  // join/const bucket per orientation instead of every live tuple; the
  // full antecedent is still evaluated on every candidate, so the fired
  // sets are identical to the exhaustive sweep.
  std::vector<exec::BlockingPlan> identity_plans_, distinct_plans_;
  std::vector<size_t> r_tracked_cols_, s_tracked_cols_;
  std::unordered_map<size_t,
                     std::unordered_map<Value, std::vector<size_t>, ValueHash>>
      r_value_index_, s_value_index_;
  exec::AmqFilter r_value_amq_, s_value_amq_;

  std::vector<Entry> r_entries_, s_entries_;
  size_t r_live_ = 0, s_live_ = 0;
  // ext-key fingerprint -> live ids, per side.
  std::unordered_map<std::string, std::vector<size_t>> r_index_, s_index_;

  std::vector<CandidatePair> candidates_;           // live certified pairs
  std::vector<CandidatePair> negative_pairs_;       // live distinct pairs
  // Lazily rebuilt matching (uniqueness-filtered candidates).
  mutable bool matching_dirty_ = true;
  mutable std::vector<CandidatePair> matching_;
  mutable Status uniqueness_ = Status::Ok();
};

}  // namespace eid

#endif  // EID_EID_INCREMENTAL_H_
