// Matching-table construction (paper §4.2) — the direct implementation.
//
// Pipeline:
//   1. R → R', S → S' (eid/extension.h): world naming, K_Ext columns
//      appended, missing values derived via ILFDs.
//   2. Hash-join R' and S' on the extended key with `non_null_eq`
//      semantics: a pair matches when the tuples agree, and are non-NULL,
//      on *every* K_Ext attribute.
//   3. Each joined pair is appended to MT_RS; the uniqueness constraint is
//      verified (a violation means the chosen extended key is not sound
//      for these relations — the prototype's "extended key causes unsound
//      matching result" diagnostic).
//
// The relational-expression formulation of the same computation (§4.2's
// chain of projections, IM-table joins, unions and outer joins) lives in
// eid/algebra_pipeline.h; tests cross-check the two.

#ifndef EID_EID_MATCHER_H_
#define EID_EID_MATCHER_H_

#include <memory>

#include "eid/extension.h"
#include "eid/match_tables.h"

namespace eid {

namespace exec {
struct AmqSeeds;
}  // namespace exec

/// Outcome of matching-table construction.
struct MatcherResult {
  /// The extended relations R' and S' (world naming). Row order matches
  /// the source relations, so pair indices apply to both.
  ExtensionResult r_extension;
  ExtensionResult s_extension;
  /// Matched pairs.
  MatchTable matching;
  /// OK when the uniqueness constraint held; ConstraintViolation(+detail)
  /// when some tuple matched more than one counterpart (unsound key).
  Status uniqueness;
  /// Per-stage counters: extend_r, extend_s, key_join.
  exec::StageStatsSet stats;

  /// Printable MT_RS (paper Table 7 layout: R-key columns then S-key
  /// columns of the extended relations).
  Result<Relation> MatchingRelation(const std::string& name = "MT") const {
    return matching.ToRelation(r_extension.extended, s_extension.extended,
                               name);
  }
};

/// Options for BuildMatchingTable.
struct MatcherOptions {
  ExtensionOptions extension;
  /// Pre-flight: statically analyze the rule program (correspondence,
  /// extended key, ILFDs, identity/distinctness rules) against the input
  /// schemas before touching any tuple, and fail with FailedPrecondition
  /// carrying the diagnostic list when it has error-severity findings
  /// (see analysis/analyzer.h). Warnings never fail the pre-flight. Off
  /// by default: analysis costs a closure computation per ILFD.
  bool analyze = false;
  /// When true, the first uniqueness violation fails the whole build. The
  /// default records the violation in MatcherResult::uniqueness, skips the
  /// violating pair, and still returns the table — mirroring the prototype,
  /// which warns ("unsound matching result") but keeps the definition.
  bool fail_on_uniqueness_violation = false;
  /// Parallelism for the whole build (extension, join probe, and — when
  /// driven from EntityIdentifier — the rule sweeps). 0 resolves via
  /// EID_THREADS, then hardware concurrency; 1 is the serial engine.
  /// Output is identical for every value (see src/exec/thread_pool.h).
  int threads = 0;
  /// Master switch for the compiled execution path (src/compile/):
  /// derivation programs with per-worker memo caches, the interned
  /// extended-key join, and compiled rule antecedents. Overrides
  /// `extension.compile`. Off runs the per-tuple interpreter everywhere,
  /// kept as a differential-testing oracle; results are bit-identical.
  bool compile = true;
  /// Master switch for staged candidate generation (see
  /// exec/candidate_generator.h): the identity and distinctness sweeps
  /// enumerate candidates through blocking-index intersection and AMQ
  /// pre-filters instead of the all-pairs scan. Off runs the exhaustive
  /// sweep, kept as a differential-testing oracle; results are
  /// bit-identical (the staged filters over-approximate, never
  /// under-approximate, and emission order is preserved).
  bool staged = true;
  /// Master switch for block-vectorized residual evaluation (see
  /// StagedEvaluator::PairTruthBlock, DESIGN.md §4h): the staged sweeps
  /// drain surviving candidates in fixed-size pair blocks and compiled
  /// residuals evaluate them op-major over the columnar id slices. Off
  /// evaluates one scalar PairTruth per pair, kept as the block path's
  /// differential oracle; fired pairs, evidence and the
  /// engine-invariant counters are bit-identical either way. Only
  /// meaningful when `staged` is on.
  bool block_eval = true;
  /// Precomputed AMQ filter contents for the staged sweeps, normally
  /// from a loaded snapshot (storage::LoadedWorld::ToConfig wires them
  /// up). Null builds the filters by scanning the extended relations.
  /// Either way the filters hold the same fingerprint set, so identify
  /// output is unchanged; only the seeding cost differs.
  std::shared_ptr<const exec::AmqSeeds> amq_seeds;
  /// Precomputed columnar-world seed (exec/columnar_world.h): the
  /// snapshot's value dictionary plus dense per-column id matrices for
  /// the base relations, normally from storage::LoadedWorld::ToConfig.
  /// When set (and compile is on), the session's columnar world starts
  /// with every base column already encoded — a zero-re-interning cold
  /// start. Null encodes lazily from the rows; results are identical.
  std::shared_ptr<const exec::ColumnarSeeds> columnar_seeds;
};

/// Builds MT_RS for `r` and `s` under the given extended key and ILFDs.
Result<MatcherResult> BuildMatchingTable(const Relation& r, const Relation& s,
                                         const AttributeCorrespondence& corr,
                                         const ExtendedKey& ext_key,
                                         const IlfdSet& ilfds,
                                         const MatcherOptions& options = {});

/// World-sharing form used by the engine: `world` (may be null) is the
/// session's columnar world, whose dictionary and column slices are
/// shared across the extension, join and rule stages so each base /
/// extended column is encoded at most once per session. The caller seeds
/// the world (if at all) before calling; only the compiled path reads
/// it. Results are identical to the default form.
Result<MatcherResult> BuildMatchingTable(const Relation& r, const Relation& s,
                                         const AttributeCorrespondence& corr,
                                         const ExtendedKey& ext_key,
                                         const IlfdSet& ilfds,
                                         const MatcherOptions& options,
                                         exec::ColumnarWorld* world);

/// Joins two already-extended relations on `ext_key` (step 3 alone):
/// returns the pairs agreeing non-NULL on every extended-key attribute.
/// Exposed for cross-checking against the algebra pipeline and for reuse
/// by the incremental engine.
Result<std::vector<TuplePair>> JoinOnExtendedKey(const Relation& r_extended,
                                                 const Relation& s_extended,
                                                 const ExtendedKey& ext_key);

/// Pool-sharing form: the probe side is sharded over `pool` (null = serial)
/// with per-chunk pair buffers merged in index order, so the pair sequence
/// equals the serial probe's for any thread count. Stage counters land in
/// `stats` when non-null. `compiled` selects the interned-id join (build
/// side interns key values serially, probe side does read-only batched
/// lookups); off hashes re-serialised string fingerprints per row.
/// `world` (compiled path only) makes the join read the session's shared
/// id columns under the kRExtended/kSExtended slots instead of encoding
/// a private copy of the key columns.
Result<std::vector<TuplePair>> JoinOnExtendedKey(const Relation& r_extended,
                                                 const Relation& s_extended,
                                                 const ExtendedKey& ext_key,
                                                 exec::ThreadPool* pool,
                                                 exec::StageStats* stats,
                                                 bool compiled = true,
                                                 exec::ColumnarWorld* world =
                                                     nullptr);

}  // namespace eid

#endif  // EID_EID_MATCHER_H_
