#include "eid/extension.h"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_set>

#include "compile/derivation_program.h"
#include "relational/algebra.h"

namespace eid {

Result<ExtensionResult> ExtendRelation(const Relation& relation, Side side,
                                       const AttributeCorrespondence& corr,
                                       const ExtendedKey& ext_key,
                                       const IlfdSet& ilfds,
                                       const ExtensionOptions& options) {
  int threads = exec::ResolveThreads(options.threads);
  if (threads <= 1) {
    return ExtendRelation(relation, side, corr, ext_key, ilfds, options,
                          /*pool=*/nullptr, /*stats=*/nullptr);
  }
  exec::ThreadPool pool(threads);
  return ExtendRelation(relation, side, corr, ext_key, ilfds, options, &pool,
                        /*stats=*/nullptr);
}

Result<ExtensionResult> ExtendRelation(const Relation& relation, Side side,
                                       const AttributeCorrespondence& corr,
                                       const ExtendedKey& ext_key,
                                       const IlfdSet& ilfds,
                                       const ExtensionOptions& options,
                                       exec::ThreadPool* pool,
                                       exec::StageStats* stats,
                                       exec::ColumnarWorld* columnar) {
  exec::StageTimer timer;
  const bool columnar_path = options.compile && columnar != nullptr;
  const double encode_ms_before =
      columnar_path ? columnar->encode_ms() : 0.0;
  const size_t reuse_before = columnar_path ? columnar->reuse_hits() : 0;

  // 1. Rename into world naming. Renaming never moves columns or changes
  // values, so the columnar path renames the schema only and keeps
  // reading the source rows positionally — no full-relation copy.
  Result<Relation> world_result = columnar_path
                                      ? corr.ToWorldSchema(relation, side)
                                      : corr.ToWorldNaming(relation, side);
  EID_RETURN_IF_ERROR(world_result.status());
  Relation world = std::move(world_result).value();

  // 2. Determine the columns to append.
  std::vector<std::string> added;
  for (const std::string& a : ext_key.attributes()) {
    if (!world.schema().Contains(a)) added.push_back(a);
  }
  if (options.derive_all) {
    std::set<std::string> extra;
    for (const Ilfd& f : ilfds.ilfds()) {
      for (const std::string& a : f.ConsequentAttributes()) {
        if (!world.schema().Contains(a)) extra.insert(a);
      }
    }
    for (const std::string& a : extra) {
      if (std::find(added.begin(), added.end(), a) == added.end()) {
        added.push_back(a);
      }
    }
  }

  // 3. Build the extended schema. Added columns default to string type
  //    unless some ILFD consequent suggests otherwise.
  std::vector<Attribute> attrs = world.schema().attributes();
  for (const std::string& name : added) {
    ValueType type = ValueType::kString;
    for (const Ilfd& f : ilfds.ilfds()) {
      for (const Atom& c : f.consequent()) {
        if (c.attribute == name && !c.value.is_null()) {
          type = c.value.type();
          break;
        }
      }
    }
    attrs.push_back(Attribute{name, type});
  }
  Relation extended(world.name() + "'", Schema(std::move(attrs)));
  // The original candidate keys remain keys of the extension.
  for (const KeyDef& key : world.keys()) {
    std::vector<std::string> names;
    for (size_t i : key.attribute_indices) {
      names.push_back(world.schema().attribute(i).name);
    }
    EID_RETURN_IF_ERROR(extended.DeclareKey(names));
  }

  ExtensionResult out;
  out.added_attributes = added;

  // 4. Per tuple: append NULLs, then derive.
  DerivationOptions derivation = options.derivation;
  if (!options.derive_all && derivation.target_attributes.empty()) {
    // Restrict reported derivations to the extended-key columns that are
    // missing (NULL) per tuple — handled below per tuple, so target the
    // whole extended key here.
    derivation.target_attributes = ext_key.attributes();
  } else if (options.derive_all) {
    derivation.target_attributes.clear();  // everything derivable
  }

  // Derivation is independent per tuple: shard rows across the pool,
  // each worker with its own ClosureEvaluator (the evaluator's
  // epoch-stamped workspace is the only mutable state; the IlfdSet is
  // read-only during the sweep). Every result lands in its row's slot,
  // so the assembled relation is identical for any thread count.
  const size_t n = relation.size();
  const int workers = (pool != nullptr ? pool->threads() : 1);
  const Schema& ext_schema = extended.schema();
  const size_t base_arity = relation.schema().size();
  const std::vector<Row>& src_rows =
      columnar_path ? relation.rows() : world.rows();

  // Compiled path: lower the ILFD program once for this schema/options
  // pair; each worker gets its own derivation memo alongside its closure
  // evaluator. The interpreter path below stays as the oracle. Borrowing
  // is safe: `ilfds` outlives this call, and the program does not escape.
  EID_SHARED_IMMUTABLE std::optional<compile::DerivationProgram> program;
  EID_PER_WORKER std::vector<compile::DerivationMemo> memos;  // by worker id
  double compile_ms = 0.0;
  if (options.compile) {
    exec::StageTimer compile_timer;
    program.emplace(compile::DerivationProgram::CompileBorrowed(
        ext_schema, ilfds, derivation));
    compile_ms = compile_timer.ElapsedMs();
    memos.resize(static_cast<size_t>(workers));
  }
  EID_PER_WORKER std::vector<ClosureEvaluator> evaluators;  // by worker id
  evaluators.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    evaluators.emplace_back(program.has_value() ? &program->kb()
                                                : &ilfds.kb());
  }

  // Columnar sweep setup (serial): bind the program's memo/seed
  // projection to the side's base slot, and encode the columns the
  // id-level re-validation and the downstream join will read — the
  // candidate-key columns and any extended-key column already present in
  // the source schema. After this the dictionary is read-only until the
  // serial merge.
  const exec::WorldRel base_slot =
      side == Side::kR ? exec::WorldRel::kR : exec::WorldRel::kS;
  const exec::WorldRel ext_slot =
      side == Side::kR ? exec::WorldRel::kRExtended
                       : exec::WorldRel::kSExtended;
  EID_SHARED_IMMUTABLE compile::ColumnarBinding binding;
  if (columnar_path) {
    binding = program->BindColumns(columnar, base_slot, relation);
    for (const KeyDef& key : extended.keys()) {
      for (size_t c : key.attribute_indices) {
        columnar->Column(base_slot, relation, c);
      }
    }
    for (const std::string& a : ext_key.attributes()) {
      std::optional<size_t> c = ext_schema.IndexOf(a);
      if (c.has_value() && *c < base_arity) {
        columnar->Column(base_slot, relation, *c);
      }
    }
  }

  std::vector<Row> rows(n);
  std::vector<Derivation> traces(n);
  std::vector<Status> row_status(n);
  // Applied writes per row — what the id patch-up after AdoptRows needs.
  std::vector<std::vector<compile::DerivationWrite>> row_writes(
      columnar_path ? n : 0);
  exec::ParallelFor(pool, n, /*grain=*/0,
                    [&](size_t begin, size_t end, int worker) {
    ClosureEvaluator& evaluator = evaluators[static_cast<size_t>(worker)];
    std::vector<compile::DerivationWrite> writes;
    for (size_t r = begin; r < end; ++r) {
      Row row = src_rows[r];
      row.resize(row.size() + added.size(), Value::Null());
      if (program.has_value()) {
        Result<Derivation> derived =
            columnar_path
                ? program->Derive(row, r, binding, &evaluator,
                                  &memos[static_cast<size_t>(worker)],
                                  &writes)
                : program->Derive(row, &evaluator,
                                  &memos[static_cast<size_t>(worker)],
                                  &writes);
        if (!derived.ok()) {
          row_status[r] = derived.status();
          continue;
        }
        for (const compile::DerivationWrite& w : writes) {
          if (row[w.column].is_null()) {
            row[w.column] = w.value;
            if (columnar_path) row_writes[r].push_back(w);
          }
        }
        rows[r] = std::move(row);
        traces[r] = std::move(derived).value();
        continue;
      }
      TupleView view(&ext_schema, &row);
      Result<Derivation> derived =
          DeriveTuple(view, ilfds, derivation, &evaluator);
      if (!derived.ok()) {
        row_status[r] = derived.status();
        continue;
      }
      for (const auto& [attr, value] : derived->derived) {
        std::optional<size_t> idx = ext_schema.IndexOf(attr);
        if (!idx.has_value()) continue;  // derivable but not modeled
        if (row[*idx].is_null()) row[*idx] = value;
      }
      rows[r] = std::move(row);
      traces[r] = std::move(derived).value();
    }
  });
  // Merge. The columnar path re-validates at the id layer and bulk-
  // installs via AdoptRows (the same trusted-bulk contract snapshot
  // loads use: base cells were validated by the source relation's own
  // Insert path; only the newly derived writes are fresh data). Anything
  // suspicious — a failed row, an off-type or NULL write, a write into a
  // key column, a NULL or duplicate id-level key — drops to the exact
  // per-row Insert replay below, so diagnostics and their precedence
  // (row r's derivation error before its insert error, before anything
  // about row r+1) stay bit-identical to the serial engine.
  bool fast = columnar_path;
  if (fast) {
    for (size_t r = 0; r < n && fast; ++r) fast = row_status[r].ok();
  }
  if (fast) {
    std::vector<char> is_key_col(ext_schema.size(), 0);
    for (const KeyDef& key : extended.keys()) {
      for (size_t c : key.attribute_indices) is_key_col[c] = 1;
    }
    for (size_t r = 0; r < n && fast; ++r) {
      for (const compile::DerivationWrite& w : row_writes[r]) {
        if (w.value.is_null() ||
            w.value.type() != ext_schema.attribute(w.column).type ||
            is_key_col[w.column] != 0) {
          fast = false;
          break;
        }
      }
    }
  }
  if (fast) {
    // Key uniqueness over packed id keys: equal ids are equal values, so
    // this accepts exactly the rows the string-fingerprint sets accept.
    for (const KeyDef& key : extended.keys()) {
      if (!fast) break;
      std::vector<const uint32_t*> cols;
      cols.reserve(key.attribute_indices.size());
      for (size_t c : key.attribute_indices) {
        cols.push_back(columnar->Column(base_slot, relation, c).data());
      }
      if (cols.size() <= 2) {
        std::unordered_set<uint64_t> seen;
        seen.reserve(n * 2);
        for (size_t r = 0; r < n; ++r) {
          uint64_t packed = 0;
          bool has_null = false;
          for (const uint32_t* col : cols) {
            const uint32_t id = col[r];
            has_null |= (id == exec::ColumnarWorld::kNullId);
            packed = (packed << 32) | id;
          }
          if (has_null || !seen.insert(packed).second) {
            fast = false;
            break;
          }
        }
      } else {
        std::unordered_set<std::vector<uint32_t>, compile::InternedKeyHash>
            seen;
        seen.reserve(n * 2);
        std::vector<uint32_t> packed(cols.size());
        for (size_t r = 0; r < n; ++r) {
          bool has_null = false;
          for (size_t i = 0; i < cols.size(); ++i) {
            packed[i] = cols[i][r];
            has_null |= (packed[i] == exec::ColumnarWorld::kNullId);
          }
          if (has_null || !seen.insert(packed).second) {
            fast = false;
            break;
          }
        }
      }
    }
  }

  size_t values_derived = 0;
  if (fast) {
    for (size_t r = 0; r < n; ++r) values_derived += traces[r].derived.size();
    out.traces = std::move(traces);
    extended.AdoptRows(std::move(rows));
    // Hand the extended relation's id columns to the join and the rule
    // stages: encoded base columns carry over (writes patched in), and
    // extension-appended columns start all-NULL and take their derived
    // ids. Columns never encoded stay lazy — the join encodes them from
    // the extended relation on demand.
    const size_t ext_arity = ext_schema.size();
    std::vector<std::vector<uint32_t>> ext_cols(ext_arity);
    std::vector<char> have(ext_arity, 0);
    for (size_t c = 0; c < ext_arity; ++c) {
      if (c < base_arity) {
        const std::vector<uint32_t>* ids = columnar->FindColumn(base_slot, c);
        if (ids == nullptr) continue;
        ext_cols[c] = *ids;
        have[c] = 1;
      } else {
        ext_cols[c].assign(n, exec::ColumnarWorld::kNullId);
        have[c] = 1;
      }
    }
    for (size_t r = 0; r < n; ++r) {
      for (const compile::DerivationWrite& w : row_writes[r]) {
        if (have[w.column] != 0) {
          ext_cols[w.column][r] = columnar->dict().GetOrIntern(w.value);
        }
      }
    }
    for (size_t c = 0; c < ext_arity; ++c) {
      if (have[c] != 0) columnar->Adopt(ext_slot, c, std::move(ext_cols[c]));
    }
  } else {
    // Merge in row order, surfacing errors exactly as the serial engine
    // did: row r's derivation error precedes its insert error, which
    // precedes anything about row r+1.
    for (size_t r = 0; r < n; ++r) {
      EID_RETURN_IF_ERROR(row_status[r]);
      values_derived += traces[r].derived.size();
      EID_RETURN_IF_ERROR(extended.Insert(std::move(rows[r])));
      out.traces.push_back(std::move(traces[r]));
    }
  }
  out.extended = std::move(extended);
  if (stats != nullptr) {
    stats->stage = side == Side::kR ? "extend_r" : "extend_s";
    stats->threads = workers;
    stats->items = n;
    stats->values_derived = values_derived;
    stats->wall_ms = timer.ElapsedMs();
    stats->compile_ms = compile_ms;
    for (const compile::DerivationMemo& memo : memos) {
      stats->memo_hits += memo.hits();
      stats->memo_misses += memo.misses();
      stats->interner_values += memo.interner_size();
    }
    if (columnar_path) {
      stats->columnar_encode_ms = columnar->encode_ms() - encode_ms_before;
      stats->interner_reuse_hits = columnar->reuse_hits() - reuse_before;
    }
  }
  return out;
}

}  // namespace eid
