#include "eid/extension.h"

#include <algorithm>
#include <optional>
#include <set>

#include "compile/derivation_program.h"
#include "relational/algebra.h"

namespace eid {

Result<ExtensionResult> ExtendRelation(const Relation& relation, Side side,
                                       const AttributeCorrespondence& corr,
                                       const ExtendedKey& ext_key,
                                       const IlfdSet& ilfds,
                                       const ExtensionOptions& options) {
  int threads = exec::ResolveThreads(options.threads);
  if (threads <= 1) {
    return ExtendRelation(relation, side, corr, ext_key, ilfds, options,
                          /*pool=*/nullptr, /*stats=*/nullptr);
  }
  exec::ThreadPool pool(threads);
  return ExtendRelation(relation, side, corr, ext_key, ilfds, options, &pool,
                        /*stats=*/nullptr);
}

Result<ExtensionResult> ExtendRelation(const Relation& relation, Side side,
                                       const AttributeCorrespondence& corr,
                                       const ExtendedKey& ext_key,
                                       const IlfdSet& ilfds,
                                       const ExtensionOptions& options,
                                       exec::ThreadPool* pool,
                                       exec::StageStats* stats) {
  exec::StageTimer timer;
  // 1. Rename into world naming.
  EID_ASSIGN_OR_RETURN(Relation world, corr.ToWorldNaming(relation, side));

  // 2. Determine the columns to append.
  std::vector<std::string> added;
  for (const std::string& a : ext_key.attributes()) {
    if (!world.schema().Contains(a)) added.push_back(a);
  }
  if (options.derive_all) {
    std::set<std::string> extra;
    for (const Ilfd& f : ilfds.ilfds()) {
      for (const std::string& a : f.ConsequentAttributes()) {
        if (!world.schema().Contains(a)) extra.insert(a);
      }
    }
    for (const std::string& a : extra) {
      if (std::find(added.begin(), added.end(), a) == added.end()) {
        added.push_back(a);
      }
    }
  }

  // 3. Build the extended schema. Added columns default to string type
  //    unless some ILFD consequent suggests otherwise.
  std::vector<Attribute> attrs = world.schema().attributes();
  for (const std::string& name : added) {
    ValueType type = ValueType::kString;
    for (const Ilfd& f : ilfds.ilfds()) {
      for (const Atom& c : f.consequent()) {
        if (c.attribute == name && !c.value.is_null()) {
          type = c.value.type();
          break;
        }
      }
    }
    attrs.push_back(Attribute{name, type});
  }
  Relation extended(world.name() + "'", Schema(std::move(attrs)));
  // The original candidate keys remain keys of the extension.
  for (const KeyDef& key : world.keys()) {
    std::vector<std::string> names;
    for (size_t i : key.attribute_indices) {
      names.push_back(world.schema().attribute(i).name);
    }
    EID_RETURN_IF_ERROR(extended.DeclareKey(names));
  }

  ExtensionResult out;
  out.added_attributes = added;

  // 4. Per tuple: append NULLs, then derive.
  DerivationOptions derivation = options.derivation;
  if (!options.derive_all && derivation.target_attributes.empty()) {
    // Restrict reported derivations to the extended-key columns that are
    // missing (NULL) per tuple — handled below per tuple, so target the
    // whole extended key here.
    derivation.target_attributes = ext_key.attributes();
  } else if (options.derive_all) {
    derivation.target_attributes.clear();  // everything derivable
  }

  // Derivation is independent per tuple: shard rows across the pool,
  // each worker with its own ClosureEvaluator (the evaluator's
  // epoch-stamped workspace is the only mutable state; the IlfdSet is
  // read-only during the sweep). Every result lands in its row's slot,
  // so the assembled relation is identical for any thread count.
  const size_t n = world.size();
  const int workers = (pool != nullptr ? pool->threads() : 1);
  const Schema& ext_schema = extended.schema();

  // Compiled path: lower the ILFD program once for this schema/options
  // pair; each worker gets its own derivation memo alongside its closure
  // evaluator. The interpreter path below stays as the oracle. Borrowing
  // is safe: `ilfds` outlives this call, and the program does not escape.
  EID_SHARED_IMMUTABLE std::optional<compile::DerivationProgram> program;
  EID_PER_WORKER std::vector<compile::DerivationMemo> memos;  // by worker id
  double compile_ms = 0.0;
  if (options.compile) {
    exec::StageTimer compile_timer;
    program.emplace(compile::DerivationProgram::CompileBorrowed(
        ext_schema, ilfds, derivation));
    compile_ms = compile_timer.ElapsedMs();
    memos.resize(static_cast<size_t>(workers));
  }
  EID_PER_WORKER std::vector<ClosureEvaluator> evaluators;  // by worker id
  evaluators.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    evaluators.emplace_back(program.has_value() ? &program->kb()
                                                : &ilfds.kb());
  }

  std::vector<Row> rows(n);
  std::vector<Derivation> traces(n);
  std::vector<Status> row_status(n);
  exec::ParallelFor(pool, n, /*grain=*/0,
                    [&](size_t begin, size_t end, int worker) {
    ClosureEvaluator& evaluator = evaluators[static_cast<size_t>(worker)];
    std::vector<compile::DerivationWrite> writes;
    for (size_t r = begin; r < end; ++r) {
      Row row = world.row(r);
      row.resize(row.size() + added.size(), Value::Null());
      if (program.has_value()) {
        Result<Derivation> derived =
            program->Derive(row, &evaluator,
                            &memos[static_cast<size_t>(worker)], &writes);
        if (!derived.ok()) {
          row_status[r] = derived.status();
          continue;
        }
        for (const compile::DerivationWrite& w : writes) {
          if (row[w.column].is_null()) row[w.column] = w.value;
        }
        rows[r] = std::move(row);
        traces[r] = std::move(derived).value();
        continue;
      }
      TupleView view(&ext_schema, &row);
      Result<Derivation> derived =
          DeriveTuple(view, ilfds, derivation, &evaluator);
      if (!derived.ok()) {
        row_status[r] = derived.status();
        continue;
      }
      for (const auto& [attr, value] : derived->derived) {
        std::optional<size_t> idx = ext_schema.IndexOf(attr);
        if (!idx.has_value()) continue;  // derivable but not modeled
        if (row[*idx].is_null()) row[*idx] = value;
      }
      rows[r] = std::move(row);
      traces[r] = std::move(derived).value();
    }
  });
  // Merge in row order, surfacing errors exactly as the serial engine
  // did: row r's derivation error precedes its insert error, which
  // precedes anything about row r+1.
  size_t values_derived = 0;
  for (size_t r = 0; r < n; ++r) {
    EID_RETURN_IF_ERROR(row_status[r]);
    values_derived += traces[r].derived.size();
    EID_RETURN_IF_ERROR(extended.Insert(std::move(rows[r])));
    out.traces.push_back(std::move(traces[r]));
  }
  out.extended = std::move(extended);
  if (stats != nullptr) {
    stats->stage = side == Side::kR ? "extend_r" : "extend_s";
    stats->threads = workers;
    stats->items = n;
    stats->values_derived = values_derived;
    stats->wall_ms = timer.ElapsedMs();
    stats->compile_ms = compile_ms;
    for (const compile::DerivationMemo& memo : memos) {
      stats->memo_hits += memo.hits();
      stats->memo_misses += memo.misses();
      stats->interner_values += memo.interner_size();
    }
  }
  return out;
}

}  // namespace eid
