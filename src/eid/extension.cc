#include "eid/extension.h"

#include <algorithm>
#include <set>

#include "relational/algebra.h"

namespace eid {

Result<ExtensionResult> ExtendRelation(const Relation& relation, Side side,
                                       const AttributeCorrespondence& corr,
                                       const ExtendedKey& ext_key,
                                       const IlfdSet& ilfds,
                                       const ExtensionOptions& options) {
  // 1. Rename into world naming.
  EID_ASSIGN_OR_RETURN(Relation world, corr.ToWorldNaming(relation, side));

  // 2. Determine the columns to append.
  std::vector<std::string> added;
  for (const std::string& a : ext_key.attributes()) {
    if (!world.schema().Contains(a)) added.push_back(a);
  }
  if (options.derive_all) {
    std::set<std::string> extra;
    for (const Ilfd& f : ilfds.ilfds()) {
      for (const std::string& a : f.ConsequentAttributes()) {
        if (!world.schema().Contains(a)) extra.insert(a);
      }
    }
    for (const std::string& a : extra) {
      if (std::find(added.begin(), added.end(), a) == added.end()) {
        added.push_back(a);
      }
    }
  }

  // 3. Build the extended schema. Added columns default to string type
  //    unless some ILFD consequent suggests otherwise.
  std::vector<Attribute> attrs = world.schema().attributes();
  for (const std::string& name : added) {
    ValueType type = ValueType::kString;
    for (const Ilfd& f : ilfds.ilfds()) {
      for (const Atom& c : f.consequent()) {
        if (c.attribute == name && !c.value.is_null()) {
          type = c.value.type();
          break;
        }
      }
    }
    attrs.push_back(Attribute{name, type});
  }
  Relation extended(world.name() + "'", Schema(std::move(attrs)));
  // The original candidate keys remain keys of the extension.
  for (const KeyDef& key : world.keys()) {
    std::vector<std::string> names;
    for (size_t i : key.attribute_indices) {
      names.push_back(world.schema().attribute(i).name);
    }
    EID_RETURN_IF_ERROR(extended.DeclareKey(names));
  }

  ExtensionResult out;
  out.added_attributes = added;

  // 4. Per tuple: append NULLs, then derive.
  DerivationOptions derivation = options.derivation;
  if (!options.derive_all && derivation.target_attributes.empty()) {
    // Restrict reported derivations to the extended-key columns that are
    // missing (NULL) per tuple — handled below per tuple, so target the
    // whole extended key here.
    derivation.target_attributes = ext_key.attributes();
  } else if (options.derive_all) {
    derivation.target_attributes.clear();  // everything derivable
  }

  // One evaluator amortises the per-closure counter initialisation across
  // all tuples (it only helps exhaustive mode; harmless otherwise).
  ClosureEvaluator evaluator(&ilfds.kb());
  for (size_t r = 0; r < world.size(); ++r) {
    Row row = world.row(r);
    row.resize(row.size() + added.size(), Value::Null());
    TupleView view(&extended.schema(), &row);
    EID_ASSIGN_OR_RETURN(Derivation derivation_result,
                         DeriveTuple(view, ilfds, derivation, &evaluator));
    for (const auto& [attr, value] : derivation_result.derived) {
      std::optional<size_t> idx = extended.schema().IndexOf(attr);
      if (!idx.has_value()) continue;  // derivable but not modeled
      if (row[*idx].is_null()) row[*idx] = value;
    }
    EID_RETURN_IF_ERROR(extended.Insert(std::move(row)));
    out.traces.push_back(std::move(derivation_result));
  }
  out.extended = std::move(extended);
  return out;
}

}  // namespace eid
