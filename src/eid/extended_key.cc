#include "eid/extended_key.h"

#include <algorithm>
#include <unordered_set>

namespace eid {

ExtendedKey::ExtendedKey(std::vector<std::string> attributes)
    : attributes_(std::move(attributes)) {
  std::sort(attributes_.begin(), attributes_.end());
  attributes_.erase(std::unique(attributes_.begin(), attributes_.end()),
                    attributes_.end());
}

bool ExtendedKey::Contains(const std::string& attribute) const {
  return std::binary_search(attributes_.begin(), attributes_.end(), attribute);
}

IdentityRule ExtendedKey::EquivalenceRule() const {
  return IdentityRule::KeyEquivalence("extended-key-equivalence(" +
                                          ToString() + ")",
                                      attributes_);
}

std::vector<std::string> ExtendedKey::MissingOn(
    const AttributeCorrespondence& corr, Side side) const {
  std::vector<std::string> missing;
  for (const std::string& a : attributes_) {
    if (!corr.LocalName(a, side).has_value()) missing.push_back(a);
  }
  return missing;
}

Result<bool> IsIdentifying(const Relation& universe,
                           const std::vector<std::string>& attributes) {
  std::vector<size_t> idx;
  for (const std::string& a : attributes) {
    EID_ASSIGN_OR_RETURN(size_t i, universe.schema().RequireIndex(a));
    idx.push_back(i);
  }
  std::unordered_set<std::string> seen;
  for (const Row& row : universe.rows()) {
    std::string fp;
    for (size_t i : idx) {
      std::string v = row[i].ToString();
      fp += std::to_string(v.size()) + ":" + v + "|" +
            static_cast<char>('0' + static_cast<int>(row[i].type()));
    }
    if (!seen.insert(fp).second) return false;
  }
  return true;
}

Status ExtendedKey::VerifyAgainstUniverse(const Relation& universe) const {
  if (attributes_.empty()) {
    return Status::InvalidArgument("extended key must be non-empty");
  }
  EID_ASSIGN_OR_RETURN(bool identifying, IsIdentifying(universe, attributes_));
  if (!identifying) {
    return Status::ConstraintViolation(
        "extended key " + ToString() +
        " does not uniquely identify entities in the universe");
  }
  for (size_t skip = 0; skip < attributes_.size(); ++skip) {
    if (attributes_.size() == 1) break;
    std::vector<std::string> subset;
    for (size_t i = 0; i < attributes_.size(); ++i) {
      if (i != skip) subset.push_back(attributes_[i]);
    }
    EID_ASSIGN_OR_RETURN(bool sub_identifying,
                         IsIdentifying(universe, subset));
    if (sub_identifying) {
      return Status::FailedPrecondition(
          "extended key " + ToString() + " is not minimal: attribute '" +
          attributes_[skip] + "' is redundant");
    }
  }
  return Status::Ok();
}

std::string ExtendedKey::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i];
  }
  out += "}";
  return out;
}

}  // namespace eid
