// PrototypeSession — a facade reproducing the paper's §6 Prolog prototype
// workflow:
//
//   1. list the candidate extended-key attributes (attributes common to
//      both source relations and asserted semantically equivalent);
//   2. `setup_extkey`: the user picks a subset; the session builds the
//      matching-table definition and *verifies* it — "The extended key is
//      verified." when no tuple matches more than one counterpart,
//      "The extended key causes unsound matching result." otherwise;
//   3. `print_matchtable` / `print_integ_table` / extended-table printers
//      in the prototype's column layout (r_*, s_* prefixes, `null` for
//      missing values).
//
// Derivation runs in kFirstMatch mode — the prototype's Prolog rules end
// with a cut, so the first applicable ILFD wins.

#ifndef EID_EID_SESSION_H_
#define EID_EID_SESSION_H_

#include <optional>
#include <string>
#include <vector>

#include "eid/identifier.h"
#include "eid/integrate.h"

namespace eid {

/// Interactive-style driver over one (R, S) pair.
class PrototypeSession {
 public:
  PrototypeSession(Relation r, Relation s, AttributeCorrespondence corr,
                   IlfdSet ilfds);

  /// Candidate extended-key attributes (world names), in listing order.
  const std::vector<std::string>& candidates() const { return candidates_; }

  /// The prototype's candidate listing, e.g.
  ///   [0] name: (r_name,s_name)
  ///   [1] speciality: (r_speciality,s_speciality)
  std::string ListCandidates() const;

  /// `setup_extkey`: selects candidates by listing index, runs
  /// identification, and returns the prototype's verification message.
  Result<std::string> SetupExtendedKey(const std::vector<size_t>& picks);

  /// Whether the last SetupExtendedKey produced a sound (verified) result.
  /// Error status when no extended key has been set up yet.
  Result<bool> Verified() const;

  /// Table printers (prototype layout). Error before SetupExtendedKey.
  Result<std::string> PrintMatchingTable() const;
  Result<std::string> PrintIntegratedTable() const;
  Result<std::string> PrintExtendedR() const;
  Result<std::string> PrintExtendedS() const;

  /// The full identification result backing the printers.
  Result<const IdentificationResult*> result() const;

  /// Engine options forwarded into every SetupExtendedKey run (e.g. set
  /// `analyze` for the static rule-program pre-flight, or `threads`).
  /// The session always forces kFirstMatch derivation on top of these.
  MatcherOptions& matcher_options() { return matcher_options_; }
  const MatcherOptions& matcher_options() const { return matcher_options_; }

 private:
  Relation r_;
  Relation s_;
  AttributeCorrespondence corr_;
  IlfdSet ilfds_;
  std::vector<std::string> candidates_;
  MatcherOptions matcher_options_;
  std::optional<IdentificationResult> result_;
  std::optional<ExtendedKey> ext_key_;
};

}  // namespace eid

#endif  // EID_EID_SESSION_H_
