// Monotonic incremental identification (paper §3.3, Fig. 3).
//
// "An entity-identification technique is monotonic if every pair of tuples
// determined by the technique to be matching/not matching remains so when
// additional information is supplied." As rules and ILFDs are added, the
// matching and non-matching regions may only grow and the undetermined
// region only shrink; completeness is reached when it is empty.
//
// MonotonicEngine wraps an EntityIdentifier over a fixed relation pair,
// re-identifies after every knowledge addition, records the partition
// history (the data behind Fig. 3), and *audits* monotonicity: a previously
// decided pair that changes status is reported — under this library's
// sound rule semantics that indicates contradictory knowledge (e.g. a new
// distinctness rule contradicting an earlier match), which the consistency
// constraint also flags.

#ifndef EID_EID_MONOTONIC_H_
#define EID_EID_MONOTONIC_H_

#include <string>
#include <vector>

#include "eid/identifier.h"

namespace eid {

/// One step of the knowledge-addition history.
struct MonotonicStep {
  std::string description;   // what was added
  PairPartition partition;   // region sizes after the addition
  bool sound = true;         // uniqueness & consistency both held
};

/// Violation of monotonicity detected between two consecutive steps.
struct MonotonicityViolation {
  TuplePair pair;
  MatchDecision before = MatchDecision::kUndetermined;
  MatchDecision after = MatchDecision::kUndetermined;
  std::string ToString() const;
};

/// Incremental identification over a fixed (R, S) pair.
class MonotonicEngine {
 public:
  /// Copies of the relations are kept; the initial configuration is run
  /// immediately (step "initial").
  MonotonicEngine(Relation r, Relation s, IdentifierConfig config);

  /// The latest identification result. Valid after construction.
  const IdentificationResult& result() const { return result_; }
  const std::vector<MonotonicStep>& history() const { return history_; }
  const std::vector<MonotonicityViolation>& violations() const {
    return violations_;
  }

  /// Knowledge additions. Each re-runs identification, appends a history
  /// step, and audits monotonicity against the previous result.
  Status AddIlfd(const Ilfd& ilfd);
  Status AddIlfdText(const std::string& text);
  Status AddIdentityRule(IdentityRule rule);
  Status AddDistinctnessRule(DistinctnessRule rule);
  /// Sets (or replaces) the extended key.
  Status SetExtendedKey(ExtendedKey key);

  /// True when the undetermined region is empty (completeness, §3.2).
  bool Complete() const { return result_.partition.undetermined == 0; }

 private:
  Status Rerun(const std::string& description);

  Relation r_;
  Relation s_;
  IdentifierConfig config_;
  IdentificationResult result_;
  std::vector<MonotonicStep> history_;
  std::vector<MonotonicityViolation> violations_;
};

}  // namespace eid

#endif  // EID_EID_MONOTONIC_H_
