#include "eid/session.h"

#include "relational/algebra.h"
#include "relational/printer.h"

namespace eid {
namespace {

constexpr const char kVerifiedMessage[] =
    "Message: The extended key is verified.";
constexpr const char kUnsoundMessage[] =
    "Message: The extended key causes unsound matching result.";

/// Renames world-named columns to the prototype's r_/s_ prefix style.
Result<Relation> PrototypeNaming(const Relation& rel,
                                 const std::string& prefix) {
  std::vector<std::string> names;
  for (const Attribute& a : rel.schema().attributes()) {
    names.push_back(prefix + a.name);
  }
  return RenameAll(rel, names);
}

}  // namespace

PrototypeSession::PrototypeSession(Relation r, Relation s,
                                   AttributeCorrespondence corr,
                                   IlfdSet ilfds)
    : r_(std::move(r)),
      s_(std::move(s)),
      corr_(std::move(corr)),
      ilfds_(std::move(ilfds)) {
  candidates_ = corr_.CommonWorldAttributes();
  // Attributes an ILFD can *derive* on a side that lacks them are also
  // candidates: that is the whole point of extended keys (§4.1). A world
  // attribute qualifies when each side either models it or some ILFD has
  // it as a consequent.
  for (const AttributeMapping& m : corr_.mappings()) {
    if (m.in_r.has_value() && m.in_s.has_value()) continue;  // already listed
    bool derivable = false;
    for (const Ilfd& f : ilfds_.ilfds()) {
      for (const std::string& c : f.ConsequentAttributes()) {
        if (c == m.world) {
          derivable = true;
          break;
        }
      }
      if (derivable) break;
    }
    if (derivable) candidates_.push_back(m.world);
  }
}

std::string PrototypeSession::ListCandidates() const {
  std::string out;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    const std::string& world = candidates_[i];
    std::optional<std::string> in_r = corr_.LocalName(world, Side::kR);
    std::optional<std::string> in_s = corr_.LocalName(world, Side::kS);
    out += "[" + std::to_string(i) + "] " + world + ": (r_" +
           (in_r.has_value() ? *in_r : "derived") + ",s_" +
           (in_s.has_value() ? *in_s : "derived") + ")\n";
  }
  return out;
}

Result<std::string> PrototypeSession::SetupExtendedKey(
    const std::vector<size_t>& picks) {
  if (picks.empty()) {
    return Status::InvalidArgument("setup_extkey: no attributes selected");
  }
  std::vector<std::string> attrs;
  for (size_t p : picks) {
    if (p >= candidates_.size()) {
      return Status::InvalidArgument("setup_extkey: index " +
                                     std::to_string(p) + " out of range");
    }
    attrs.push_back(candidates_[p]);
  }
  ExtendedKey key(std::move(attrs));

  IdentifierConfig config;
  config.correspondence = corr_;
  config.extended_key = key;
  config.ilfds = ilfds_;
  config.matcher_options = matcher_options_;
  // Prototype fidelity: first-match (cut) derivation order.
  config.matcher_options.extension.derivation.mode =
      DerivationMode::kFirstMatch;
  EntityIdentifier identifier(std::move(config));
  EID_ASSIGN_OR_RETURN(IdentificationResult result, identifier.Identify(r_, s_));

  ext_key_ = std::move(key);
  result_ = std::move(result);
  return std::string(result_->uniqueness.ok() ? kVerifiedMessage
                                              : kUnsoundMessage);
}

Result<bool> PrototypeSession::Verified() const {
  if (!result_.has_value()) {
    return Status::FailedPrecondition("setup_extkey has not been run");
  }
  return result_->uniqueness.ok();
}

Result<const IdentificationResult*> PrototypeSession::result() const {
  if (!result_.has_value()) {
    return Status::FailedPrecondition("setup_extkey has not been run");
  }
  return &*result_;
}

Result<std::string> PrototypeSession::PrintMatchingTable() const {
  EID_ASSIGN_OR_RETURN(const IdentificationResult* res, result());
  EID_ASSIGN_OR_RETURN(Relation mt, res->MatchingRelation("matchtable"));
  // Prototype column style: R.name -> r_name.
  std::vector<std::string> names;
  for (const Attribute& a : mt.schema().attributes()) {
    std::string n = a.name;
    if (n.rfind("R.", 0) == 0) n = "r_" + n.substr(2);
    else if (n.rfind("S.", 0) == 0) n = "s_" + n.substr(2);
    names.push_back(n);
  }
  EID_ASSIGN_OR_RETURN(Relation renamed, RenameAll(mt, names));
  PrintOptions opts;
  opts.title = "matching table";
  return FormatTable(renamed, opts);
}

Result<std::string> PrototypeSession::PrintIntegratedTable() const {
  EID_ASSIGN_OR_RETURN(const IdentificationResult* res, result());
  EID_ASSIGN_OR_RETURN(
      Relation integ,
      BuildIntegratedTable(*res, IntegrationLayout::kSideBySide,
                           "integrated table"));
  std::vector<std::string> names;
  for (const Attribute& a : integ.schema().attributes()) {
    std::string n = a.name;
    if (n.rfind("R.", 0) == 0) n = "r_" + n.substr(2);
    else if (n.rfind("S.", 0) == 0) n = "s_" + n.substr(2);
    names.push_back(n);
  }
  EID_ASSIGN_OR_RETURN(Relation renamed, RenameAll(integ, names));
  PrintOptions opts;
  opts.title = "integrated table";
  return FormatTable(renamed, opts);
}

Result<std::string> PrototypeSession::PrintExtendedR() const {
  EID_ASSIGN_OR_RETURN(const IdentificationResult* res, result());
  EID_ASSIGN_OR_RETURN(Relation renamed, PrototypeNaming(res->r_extended, "r_"));
  PrintOptions opts;
  opts.title = "extended R table";
  return FormatTable(renamed, opts);
}

Result<std::string> PrototypeSession::PrintExtendedS() const {
  EID_ASSIGN_OR_RETURN(const IdentificationResult* res, result());
  EID_ASSIGN_OR_RETURN(Relation renamed, PrototypeNaming(res->s_extended, "s_"));
  PrintOptions opts;
  opts.title = "extended S table";
  return FormatTable(renamed, opts);
}

}  // namespace eid
