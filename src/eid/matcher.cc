#include "eid/matcher.h"

#include <algorithm>
#include <unordered_map>

#include "analysis/analyzer.h"
#include "compile/interner.h"
#include "compile/pair_program.h"
#include "eid/identifier.h"

namespace eid {

namespace {

/// Key fingerprint of a row over the given columns; sets *has_null when
/// any key column is NULL (such rows never join: non_null_eq).
std::string KeyFingerprint(const Row& row, const std::vector<size_t>& idx,
                           bool* has_null) {
  std::string fp;
  *has_null = false;
  for (size_t i : idx) {
    if (row[i].is_null()) {
      *has_null = true;
      return fp;
    }
    std::string v = row[i].ToString();
    fp += std::to_string(v.size()) + ":" + v + "|" +
          static_cast<char>('0' + static_cast<int>(row[i].type()));
  }
  return fp;
}

}  // namespace

Result<std::vector<TuplePair>> JoinOnExtendedKey(const Relation& r_extended,
                                                 const Relation& s_extended,
                                                 const ExtendedKey& ext_key) {
  return JoinOnExtendedKey(r_extended, s_extended, ext_key, /*pool=*/nullptr,
                           /*stats=*/nullptr);
}

Result<std::vector<TuplePair>> JoinOnExtendedKey(const Relation& r_extended,
                                                 const Relation& s_extended,
                                                 const ExtendedKey& ext_key,
                                                 exec::ThreadPool* pool,
                                                 exec::StageStats* stats,
                                                 bool compiled,
                                                 exec::ColumnarWorld* world) {
  exec::StageTimer timer;
  std::vector<size_t> r_idx, s_idx;
  for (const std::string& a : ext_key.attributes()) {
    EID_ASSIGN_OR_RETURN(size_t ri, r_extended.schema().RequireIndex(a));
    EID_ASSIGN_OR_RETURN(size_t si, s_extended.schema().RequireIndex(a));
    r_idx.push_back(ri);
    s_idx.push_back(si);
  }

  // Probe R in parallel chunks; buckets hold ascending s indices and
  // chunks cover ascending r ranges, so concatenating per-chunk buffers
  // reproduces the serial probe's (r-major, s-ascending) pair order.
  const size_t n = r_extended.size();
  const int threads = pool != nullptr ? pool->threads() : 1;
  const size_t grain =
      std::max<size_t>(1, n / (static_cast<size_t>(threads) * 4));
  const size_t num_chunks = n == 0 ? 0 : (n + grain - 1) / grain;
  std::vector<std::vector<TuplePair>> found(num_chunks);
  compile::KeyJoinStats join_stats;

  std::vector<TuplePair> pairs;
  if (compiled) {
    // Columnar interned join (compile/pair_program.h): the key columns
    // come from the session world (encoded at most once across stages)
    // or a private batch encode, probes run in vectorized blocks, and
    // keys of width <= 2 pack into one uint64_t so each probe is a
    // single integer-hash lookup.
    pairs = compile::InternedKeyJoin(r_extended, s_extended, r_idx, s_idx,
                                     pool, world, &join_stats);
  } else {
    std::unordered_map<std::string, std::vector<size_t>> build;
    build.reserve(s_extended.size() * 2);
    for (size_t s = 0; s < s_extended.size(); ++s) {
      bool has_null = false;
      std::string fp = KeyFingerprint(s_extended.row(s), s_idx, &has_null);
      if (has_null) continue;  // non_null_eq: NULL keys never match
      build[fp].push_back(s);
    }
    exec::ParallelFor(pool, n, grain, [&](size_t begin, size_t end, int) {
      const size_t chunk = begin / grain;
      for (size_t r = begin; r < end; ++r) {
        bool has_null = false;
        std::string fp = KeyFingerprint(r_extended.row(r), r_idx, &has_null);
        if (has_null) continue;
        auto it = build.find(fp);
        if (it == build.end()) continue;
        for (size_t s : it->second) {
          found[chunk].push_back(TuplePair{r, s});
        }
      }
    });
  }

  if (!compiled) {
    size_t total = 0;
    for (const auto& f : found) total += f.size();
    pairs.reserve(total);
    for (auto& f : found) pairs.insert(pairs.end(), f.begin(), f.end());
  }

  if (stats != nullptr) {
    stats->stage = "key_join";
    stats->threads = threads;
    stats->items = pairs.size();
    stats->candidate_pairs = pairs.size();
    stats->cross_product = r_extended.size() * s_extended.size();
    stats->wall_ms = timer.ElapsedMs();
    stats->interner_values = join_stats.interner_values;
    stats->probe_batches = join_stats.probe_batches;
    stats->interner_reuse_hits = join_stats.reuse_hits;
    stats->columnar_encode_ms = join_stats.encode_ms;
  }
  return pairs;
}

Result<MatcherResult> BuildMatchingTable(const Relation& r, const Relation& s,
                                         const AttributeCorrespondence& corr,
                                         const ExtendedKey& ext_key,
                                         const IlfdSet& ilfds,
                                         const MatcherOptions& options) {
  // Standalone entry: the session world lives for this one build.
  exec::ColumnarWorld world;
  if (options.compile && options.columnar_seeds != nullptr) {
    world.Seed(*options.columnar_seeds);
  }
  return BuildMatchingTable(r, s, corr, ext_key, ilfds, options,
                            options.compile ? &world : nullptr);
}

Result<MatcherResult> BuildMatchingTable(const Relation& r, const Relation& s,
                                         const AttributeCorrespondence& corr,
                                         const ExtendedKey& ext_key,
                                         const IlfdSet& ilfds,
                                         const MatcherOptions& options,
                                         exec::ColumnarWorld* world) {
  if (ext_key.empty()) {
    return Status::InvalidArgument("extended key must be non-empty");
  }
  EID_RETURN_IF_ERROR(corr.ValidateAgainst(r, s));
  // Every extended-key attribute must be modeled on at least one side —
  // otherwise no tuple can ever have a full non-NULL key on both sides and
  // the key is unusable.
  for (const std::string& a : ext_key.attributes()) {
    if (corr.Find(a) == nullptr) {
      return Status::NotFound("extended-key attribute '" + a +
                              "' unknown to the attribute correspondence");
    }
  }

  if (options.analyze) {
    IdentifierConfig program;
    program.correspondence = corr;
    program.extended_key = ext_key;
    program.ilfds = ilfds;
    program.matcher_options = options;
    program.matcher_options.analyze = false;
    EID_RETURN_IF_ERROR(
        analysis::PreflightCheck(r.schema(), s.schema(), program));
  }

  const int threads = exec::ResolveThreads(options.threads);
  exec::ThreadPool pool(threads);
  exec::ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;

  MatcherResult result;
  exec::StageStats extend_r, extend_s, key_join;
  ExtensionOptions ext = options.extension;
  ext.compile = options.compile;  // the matcher-level switch wins
  EID_ASSIGN_OR_RETURN(
      result.r_extension,
      ExtendRelation(r, Side::kR, corr, ext_key, ilfds, ext, pool_ptr,
                     &extend_r, world));
  EID_ASSIGN_OR_RETURN(
      result.s_extension,
      ExtendRelation(s, Side::kS, corr, ext_key, ilfds, ext, pool_ptr,
                     &extend_s, world));

  EID_ASSIGN_OR_RETURN(
      std::vector<TuplePair> pairs,
      JoinOnExtendedKey(result.r_extension.extended,
                        result.s_extension.extended, ext_key, pool_ptr,
                        &key_join, options.compile, world));

  result.uniqueness = Status::Ok();
  for (const TuplePair& p : pairs) {
    Status st = result.matching.Add(p);
    if (!st.ok()) {
      if (options.fail_on_uniqueness_violation) return st;
      if (result.uniqueness.ok()) result.uniqueness = st;  // first violation
    }
  }
  result.stats.Add(std::move(extend_r));
  result.stats.Add(std::move(extend_s));
  result.stats.Add(std::move(key_join));
  return result;
}

}  // namespace eid
