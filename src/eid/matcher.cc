#include "eid/matcher.h"

#include <unordered_map>

namespace eid {

Result<std::vector<TuplePair>> JoinOnExtendedKey(const Relation& r_extended,
                                                 const Relation& s_extended,
                                                 const ExtendedKey& ext_key) {
  std::vector<size_t> r_idx, s_idx;
  for (const std::string& a : ext_key.attributes()) {
    EID_ASSIGN_OR_RETURN(size_t ri, r_extended.schema().RequireIndex(a));
    EID_ASSIGN_OR_RETURN(size_t si, s_extended.schema().RequireIndex(a));
    r_idx.push_back(ri);
    s_idx.push_back(si);
  }
  auto fingerprint = [](const Row& row, const std::vector<size_t>& idx,
                        bool* has_null) {
    std::string fp;
    *has_null = false;
    for (size_t i : idx) {
      if (row[i].is_null()) {
        *has_null = true;
        return fp;
      }
      std::string v = row[i].ToString();
      fp += std::to_string(v.size()) + ":" + v + "|" +
            static_cast<char>('0' + static_cast<int>(row[i].type()));
    }
    return fp;
  };

  std::unordered_map<std::string, std::vector<size_t>> build;
  build.reserve(s_extended.size() * 2);
  for (size_t s = 0; s < s_extended.size(); ++s) {
    bool has_null = false;
    std::string fp = fingerprint(s_extended.row(s), s_idx, &has_null);
    if (has_null) continue;  // non_null_eq: NULL keys never match
    build[fp].push_back(s);
  }

  std::vector<TuplePair> pairs;
  for (size_t r = 0; r < r_extended.size(); ++r) {
    bool has_null = false;
    std::string fp = fingerprint(r_extended.row(r), r_idx, &has_null);
    if (has_null) continue;
    auto it = build.find(fp);
    if (it == build.end()) continue;
    for (size_t s : it->second) {
      pairs.push_back(TuplePair{r, s});
    }
  }
  return pairs;
}

Result<MatcherResult> BuildMatchingTable(const Relation& r, const Relation& s,
                                         const AttributeCorrespondence& corr,
                                         const ExtendedKey& ext_key,
                                         const IlfdSet& ilfds,
                                         const MatcherOptions& options) {
  if (ext_key.empty()) {
    return Status::InvalidArgument("extended key must be non-empty");
  }
  EID_RETURN_IF_ERROR(corr.ValidateAgainst(r, s));
  // Every extended-key attribute must be modeled on at least one side —
  // otherwise no tuple can ever have a full non-NULL key on both sides and
  // the key is unusable.
  for (const std::string& a : ext_key.attributes()) {
    if (corr.Find(a) == nullptr) {
      return Status::NotFound("extended-key attribute '" + a +
                              "' unknown to the attribute correspondence");
    }
  }

  MatcherResult result;
  EID_ASSIGN_OR_RETURN(
      result.r_extension,
      ExtendRelation(r, Side::kR, corr, ext_key, ilfds, options.extension));
  EID_ASSIGN_OR_RETURN(
      result.s_extension,
      ExtendRelation(s, Side::kS, corr, ext_key, ilfds, options.extension));

  EID_ASSIGN_OR_RETURN(
      std::vector<TuplePair> pairs,
      JoinOnExtendedKey(result.r_extension.extended,
                        result.s_extension.extended, ext_key));

  result.uniqueness = Status::Ok();
  for (const TuplePair& p : pairs) {
    Status st = result.matching.Add(p);
    if (!st.ok()) {
      if (options.fail_on_uniqueness_violation) return st;
      if (result.uniqueness.ok()) result.uniqueness = st;  // first violation
    }
  }
  return result;
}

}  // namespace eid
