// Extended keys (paper §4.1).
//
// The extended key K_Ext is a minimal set of (world) attributes, of the
// form K_1 ∪ K_2 ∪ Ā, that uniquely identifies an entity of type E in the
// integrated real world. Its induced identity rule — extended-key
// equivalence — matches tuples that agree, non-NULL, on every K_Ext
// attribute. Unlike plain key equivalence it applies when R and S share no
// common candidate key, because missing K_Ext attributes can be derived
// via ILFDs.

#ifndef EID_EID_EXTENDED_KEY_H_
#define EID_EID_EXTENDED_KEY_H_

#include <string>
#include <vector>

#include "eid/correspondence.h"
#include "rules/identity_rule.h"

namespace eid {

/// An extended key over world attribute names.
class ExtendedKey {
 public:
  ExtendedKey() = default;
  explicit ExtendedKey(std::vector<std::string> attributes);

  const std::vector<std::string>& attributes() const { return attributes_; }
  size_t size() const { return attributes_.size(); }
  bool empty() const { return attributes_.empty(); }
  bool Contains(const std::string& attribute) const;

  /// The induced identity rule (extended-key equivalence, §4.1).
  IdentityRule EquivalenceRule() const;

  /// K_Ext attributes *not* modeled by the given side — the K_Ext−R /
  /// K_Ext−S of §4.2, which extension must add and ILFDs must derive.
  std::vector<std::string> MissingOn(const AttributeCorrespondence& corr,
                                     Side side) const;

  /// Checks K_Ext against a ground-truth entity universe (a relation whose
  /// rows are the distinct integrated-world entities, in world naming):
  ///  * identifying: no two entities agree on all K_Ext attributes;
  ///  * minimal: no proper subset is identifying.
  /// Returns OK when both hold; ConstraintViolation when not identifying;
  /// FailedPrecondition (with the redundant attribute named) when
  /// identifying but not minimal.
  Status VerifyAgainstUniverse(const Relation& universe) const;

  /// "{name, cuisine, speciality}" display form.
  std::string ToString() const;

  bool operator==(const ExtendedKey& other) const {
    return attributes_ == other.attributes_;
  }

 private:
  std::vector<std::string> attributes_;  // sorted, unique
};

/// True iff `attributes` is identifying over `universe` (helper shared with
/// VerifyAgainstUniverse; NULLs compare by storage equality).
Result<bool> IsIdentifying(const Relation& universe,
                           const std::vector<std::string>& attributes);

}  // namespace eid

#endif  // EID_EID_EXTENDED_KEY_H_
