#include "eid/match_tables.h"

#include <algorithm>

namespace eid {

namespace {

/// First pair index recorded for `row` in a flat side index, growing the
/// vector on demand (row indices are bounded by the relation size).
void RecordFirst(std::vector<size_t>* side, size_t row, size_t pair_idx,
                 size_t no_pair) {
  if (row >= side->size()) side->resize(row + 1, no_pair);
  if ((*side)[row] == no_pair) (*side)[row] = pair_idx;
}

}  // namespace

uint64_t PackedPairSet::Pack(const TuplePair& p) {
  EID_CHECK(p.r_index < (size_t{1} << 32) && p.s_index < (size_t{1} << 32));
  return (static_cast<uint64_t>(p.r_index) << 32) |
         static_cast<uint64_t>(p.s_index);
}

void PackedPairSet::Reserve(size_t n) {
  // Slots stay at most half full, so probes terminate quickly.
  size_t want = 16;
  while (want < n * 2) want *= 2;
  if (want > slots_.size()) Grow(want);
}

void PackedPairSet::Grow(size_t min_slots) {
  std::vector<uint64_t> old = std::move(slots_);
  slots_.assign(min_slots, kEmpty);
  mask_ = min_slots - 1;
  for (uint64_t key : old) {
    if (key == kEmpty) continue;
    uint64_t i = MixKey(key) & mask_;
    while (slots_[i] != kEmpty) i = (i + 1) & mask_;
    slots_[i] = key;
  }
}

bool PackedPairSet::Insert(uint64_t key) {
  if (slots_.empty() || size_ * 2 >= slots_.size()) {
    Grow(slots_.empty() ? 16 : slots_.size() * 2);
  }
  uint64_t i = MixKey(key) & mask_;
  while (slots_[i] != kEmpty) {
    if (slots_[i] == key) return false;
    i = (i + 1) & mask_;
  }
  slots_[i] = key;
  ++size_;
  return true;
}

bool PackedPairSet::Contains(uint64_t key) const {
  if (slots_.empty()) return false;
  uint64_t i = MixKey(key) & mask_;
  while (slots_[i] != kEmpty) {
    if (slots_[i] == key) return true;
    i = (i + 1) & mask_;
  }
  return false;
}

void MatchTable::MigrateToHash() {
  members_.Reserve(pairs_.size());
  constexpr size_t kPrefetchAhead = 16;
  for (size_t i = 0; i < pairs_.size(); ++i) {
    if (i + kPrefetchAhead < pairs_.size()) {
      members_.PrefetchSlot(PackedPairSet::Pack(pairs_[i + kPrefetchAhead]));
    }
    members_.Insert(PackedPairSet::Pack(pairs_[i]));
  }
  sorted_ = false;
}

Status MatchTable::Add(TuplePair pair) {
  // An out-of-order add ends the sorted-order membership regime: build
  // the hash set once from what is stored, then stay on it. A re-add of
  // the current last pair is the only duplicate a sorted stream can
  // carry, handled below without leaving the regime.
  if (sorted_ && !pairs_.empty() && pair < pairs_.back()) MigrateToHash();
  if (!negative_) {
    if (Contains(pair)) return Status::Ok();
    if (HasR(pair.r_index)) {
      return Status::ConstraintViolation(
          "uniqueness constraint: R tuple " + std::to_string(pair.r_index) +
          " already matched to S tuple " +
          std::to_string(pairs_[by_r_[pair.r_index]].s_index) +
          ", cannot also match S tuple " + std::to_string(pair.s_index));
    }
    if (HasS(pair.s_index)) {
      return Status::ConstraintViolation(
          "uniqueness constraint: S tuple " + std::to_string(pair.s_index) +
          " already matched to R tuple " +
          std::to_string(pairs_[by_s_[pair.s_index]].r_index) +
          ", cannot also match R tuple " + std::to_string(pair.r_index));
    }
  } else if (sorted_) {
    if (!pairs_.empty() && pair == pairs_.back()) {
      return Status::Ok();  // idempotent re-add
    }
  } else if (!members_.Insert(PackedPairSet::Pack(pair))) {
    return Status::Ok();  // idempotent re-add
  }
  size_t idx = pairs_.size();
  pairs_.push_back(pair);
  if (!negative_ && !sorted_) members_.Insert(PackedPairSet::Pack(pair));
  RecordFirst(&by_r_, pair.r_index, idx, kNoPair);
  RecordFirst(&by_s_, pair.s_index, idx, kNoPair);
  return Status::Ok();
}

Status MatchTable::AddNegativeBatch(const TuplePair* first, size_t n,
                                    size_t stride) {
  EID_CHECK(negative_);
  pairs_.reserve(pairs_.size() + n);
  const char* base = reinterpret_cast<const char*>(first);
  auto pair_at = [&](size_t i) {
    return *reinterpret_cast<const TuplePair*>(base + i * stride);
  };
  // Far enough ahead to cover DRAM latency, close enough that the lines
  // are still resident when the insert reaches them. Only the hash
  // regime touches DRAM-resident slots; the sorted fast path is a pure
  // append and needs no warming.
  constexpr size_t kPrefetchAhead = 16;
  for (size_t i = 0; i < n; ++i) {
    const TuplePair pair = pair_at(i);
    if (sorted_) {
      if (!pairs_.empty()) {
        if (pair == pairs_.back()) continue;  // idempotent
        if (pair < pairs_.back()) MigrateToHash();
      }
    }
    if (!sorted_) {
      if (i + kPrefetchAhead < n) {
        members_.PrefetchSlot(
            PackedPairSet::Pack(pair_at(i + kPrefetchAhead)));
      }
      if (!members_.Insert(PackedPairSet::Pack(pair))) continue;
    }
    const size_t idx = pairs_.size();
    pairs_.push_back(pair);
    RecordFirst(&by_r_, pair.r_index, idx, kNoPair);
    RecordFirst(&by_s_, pair.s_index, idx, kNoPair);
  }
  return Status::Ok();
}

Result<MatchTable> MatchTable::FromPairs(bool negative,
                                         const std::vector<TuplePair>& pairs) {
  MatchTable table(negative);
  if (negative) {
    // The Add loop has no constraint to report for negative tables, and
    // snapshots serialize pairs in sorted row-major order — the batch
    // path keeps the rebuild a pure append.
    EID_RETURN_IF_ERROR(table.AddNegativeBatch(pairs.data(), pairs.size()));
    return table;
  }
  table.Reserve(pairs.size());
  for (const TuplePair& pair : pairs) {
    EID_RETURN_IF_ERROR(table.Add(pair));
  }
  return table;
}

void MatchTable::Reserve(size_t n) {
  pairs_.reserve(n);
  // The hash set is sized when (and only if) MigrateToHash builds it: a
  // sorted-order table never allocates probe slots at all.
}

bool MatchTable::Contains(const TuplePair& pair) const {
  if (sorted_) {
    return std::binary_search(pairs_.begin(), pairs_.end(), pair);
  }
  return members_.Contains(PackedPairSet::Pack(pair));
}

std::optional<size_t> MatchTable::MatchOfR(size_t r_index) const {
  if (!HasR(r_index)) return std::nullopt;
  return pairs_[by_r_[r_index]].s_index;
}

std::optional<size_t> MatchTable::MatchOfS(size_t s_index) const {
  if (!HasS(s_index)) return std::nullopt;
  return pairs_[by_s_[s_index]].r_index;
}

Result<Relation> MatchTable::ToRelation(const Relation& r, const Relation& s,
                                        const std::string& name) const {
  std::vector<size_t> r_key = r.PrimaryKeyIndices();
  std::vector<size_t> s_key = s.PrimaryKeyIndices();
  std::vector<Attribute> attrs;
  for (size_t i : r_key) {
    Attribute a = r.schema().attribute(i);
    a.name = "R." + a.name;
    attrs.push_back(std::move(a));
  }
  for (size_t i : s_key) {
    Attribute a = s.schema().attribute(i);
    a.name = "S." + a.name;
    attrs.push_back(std::move(a));
  }
  Relation out(name, Schema(std::move(attrs)));
  for (const TuplePair& p : pairs_) {
    if (p.r_index >= r.size() || p.s_index >= s.size()) {
      return Status::InvalidArgument(
          "match table indices out of range for the supplied relations");
    }
    Row row;
    for (size_t i : r_key) row.push_back(r.row(p.r_index)[i]);
    for (size_t i : s_key) row.push_back(s.row(p.s_index)[i]);
    EID_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  return out;
}

Status MatchTable::CheckConsistency(const MatchTable& mt,
                                    const MatchTable& nmt) {
  EID_CHECK(!mt.negative() && nmt.negative());
  // Iterate the smaller table and probe the larger one's flat set: the
  // intersection is symmetric, and a dense NMT holds tens of millions of
  // pairs against an MT bounded by min(|R|, |S|) — walking the NMT on
  // every identification dominated dense `identify` teardown.
  const MatchTable& outer = mt.size() <= nmt.size() ? mt : nmt;
  const MatchTable& inner = mt.size() <= nmt.size() ? nmt : mt;
  for (const TuplePair& p : outer.pairs()) {
    if (inner.Contains(p)) {
      return Status::ConstraintViolation(
          "consistency constraint: pair (R" + std::to_string(p.r_index) +
          ", S" + std::to_string(p.s_index) +
          ") appears in both the matching and negative matching tables");
    }
  }
  return Status::Ok();
}

}  // namespace eid
