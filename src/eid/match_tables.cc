#include "eid/match_tables.h"

#include <set>

namespace eid {

Status MatchTable::Add(TuplePair pair) {
  if (Contains(pair)) return Status::Ok();
  if (!negative_) {
    if (HasR(pair.r_index)) {
      return Status::ConstraintViolation(
          "uniqueness constraint: R tuple " + std::to_string(pair.r_index) +
          " already matched to S tuple " +
          std::to_string(pairs_[by_r_.at(pair.r_index)].s_index) +
          ", cannot also match S tuple " + std::to_string(pair.s_index));
    }
    if (HasS(pair.s_index)) {
      return Status::ConstraintViolation(
          "uniqueness constraint: S tuple " + std::to_string(pair.s_index) +
          " already matched to R tuple " +
          std::to_string(pairs_[by_s_.at(pair.s_index)].r_index) +
          ", cannot also match R tuple " + std::to_string(pair.r_index));
    }
  }
  size_t idx = pairs_.size();
  pairs_.push_back(pair);
  members_.insert(pair);
  by_r_.emplace(pair.r_index, idx);
  by_s_.emplace(pair.s_index, idx);
  return Status::Ok();
}

Result<MatchTable> MatchTable::FromPairs(bool negative,
                                         const std::vector<TuplePair>& pairs) {
  MatchTable table(negative);
  table.Reserve(pairs.size());
  for (const TuplePair& pair : pairs) {
    EID_RETURN_IF_ERROR(table.Add(pair));
  }
  return table;
}

void MatchTable::Reserve(size_t n) {
  pairs_.reserve(n);
  members_.reserve(n);
  by_r_.reserve(n);
  by_s_.reserve(n);
}

bool MatchTable::Contains(const TuplePair& pair) const {
  return members_.count(pair) > 0;
}

std::optional<size_t> MatchTable::MatchOfR(size_t r_index) const {
  auto it = by_r_.find(r_index);
  if (it == by_r_.end()) return std::nullopt;
  return pairs_[it->second].s_index;
}

std::optional<size_t> MatchTable::MatchOfS(size_t s_index) const {
  auto it = by_s_.find(s_index);
  if (it == by_s_.end()) return std::nullopt;
  return pairs_[it->second].r_index;
}

Result<Relation> MatchTable::ToRelation(const Relation& r, const Relation& s,
                                        const std::string& name) const {
  std::vector<size_t> r_key = r.PrimaryKeyIndices();
  std::vector<size_t> s_key = s.PrimaryKeyIndices();
  std::vector<Attribute> attrs;
  for (size_t i : r_key) {
    Attribute a = r.schema().attribute(i);
    a.name = "R." + a.name;
    attrs.push_back(std::move(a));
  }
  for (size_t i : s_key) {
    Attribute a = s.schema().attribute(i);
    a.name = "S." + a.name;
    attrs.push_back(std::move(a));
  }
  Relation out(name, Schema(std::move(attrs)));
  for (const TuplePair& p : pairs_) {
    if (p.r_index >= r.size() || p.s_index >= s.size()) {
      return Status::InvalidArgument(
          "match table indices out of range for the supplied relations");
    }
    Row row;
    for (size_t i : r_key) row.push_back(r.row(p.r_index)[i]);
    for (size_t i : s_key) row.push_back(s.row(p.s_index)[i]);
    EID_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  return out;
}

Status MatchTable::CheckConsistency(const MatchTable& mt,
                                    const MatchTable& nmt) {
  EID_CHECK(!mt.negative() && nmt.negative());
  std::set<TuplePair> in_mt(mt.pairs().begin(), mt.pairs().end());
  for (const TuplePair& p : nmt.pairs()) {
    if (in_mt.count(p) > 0) {
      return Status::ConstraintViolation(
          "consistency constraint: pair (R" + std::to_string(p.r_index) +
          ", S" + std::to_string(p.s_index) +
          ") appears in both the matching and negative matching tables");
    }
  }
  return Status::Ok();
}

}  // namespace eid
