// The paper's §4.2 relational-expression formulation of matching-table
// construction, executed literally with the relational-algebra substrate
// and ILFD tables IM(x̄, y):
//
//   R_yi^u = Π_{K_R, y_i}( R ⋈ IM_(r̄u, y_i) )      one per usable IM table
//   R_yi   = ∪_u R_yi^u
//   R'     = R ⟕_{K_R} R_y1 ⟕_{K_R} … ⟕_{K_R} R_ym   (left outer joins)
//   (S' analogously)
//   MT_RS  = Π_{K_R, K_S}( R' ⋈_{K_Ext} S' )          (non-NULL equality)
//
// The paper's Example 3 applies *derived* ILFDs (its I9, obtained from I7
// and I8 by pseudotransitivity) so that one join round suffices. This
// implementation generalises to chained derivations by iterating rounds:
// after each round the newly derived columns become available to IM tables
// whose antecedents need them, until a fixpoint. With pre-composed ILFD
// tables it reduces to the paper's single round.

#ifndef EID_EID_ALGEBRA_PIPELINE_H_
#define EID_EID_ALGEBRA_PIPELINE_H_

#include <vector>

#include "eid/correspondence.h"
#include "eid/extended_key.h"
#include "ilfd/ilfd_table.h"

namespace eid {

/// Outcome of the algebraic construction.
struct AlgebraPipelineResult {
  Relation r_extended;  // R' (world naming)
  Relation s_extended;  // S'
  /// MT_RS as a relation: R-key columns prefixed "R.", S-key columns
  /// prefixed "S." (comparable with MatchTable::ToRelation output).
  Relation matching;
  /// Rounds of IM-table joins performed per side (1 = the paper's form).
  size_t r_rounds = 0;
  size_t s_rounds = 0;
};

/// Runs the §4.2 pipeline. `tables` are the available ILFD tables.
Result<AlgebraPipelineResult> BuildMatchingTableAlgebraically(
    const Relation& r, const Relation& s, const AttributeCorrespondence& corr,
    const ExtendedKey& ext_key, const std::vector<IlfdTable>& tables);

/// Extends one side algebraically (the R → R' fragment), exposed for tests.
/// Returns the extended relation and the number of rounds used.
Result<std::pair<Relation, size_t>> ExtendAlgebraically(
    const Relation& world_named, const ExtendedKey& ext_key,
    const std::vector<IlfdTable>& tables);

}  // namespace eid

#endif  // EID_EID_ALGEBRA_PIPELINE_H_
