// Virtual database integration (paper §1–§2).
//
// "A virtually integrated database is created on top of the component
// databases … the components retain their identities and usage. … the
// strategies and information required for resolving instance level
// problems have to be specified during design time, i.e., schema
// integration phase, but the actual processing only takes place during
// the query time."
//
// VirtualIntegrator is that arrangement: the IdentifierConfig (extended
// key, ILFDs, rules — the design-time knowledge) is fixed up front; the
// component relations keep changing autonomously; entity identification
// runs lazily at query time and its result is cached until the next
// component update invalidates it.

#ifndef EID_EID_VIRTUAL_VIEW_H_
#define EID_EID_VIRTUAL_VIEW_H_

#include <optional>

#include "eid/identifier.h"
#include "eid/integrate.h"
#include "relational/algebra.h"

namespace eid {

/// A lazily-identified integrated view over two mutable components.
class VirtualIntegrator {
 public:
  /// Design-time specification + initial component states.
  VirtualIntegrator(IdentifierConfig config, Relation r, Relation s)
      : config_(std::move(config)), r_(std::move(r)), s_(std::move(s)) {}

  /// Component updates (the autonomous databases keep operating). Each
  /// successful update invalidates the cached identification.
  Status InsertR(Row row);
  Status InsertS(Row row);

  /// Query-time operations over the merged integrated table T_RS.
  /// Identification runs on first use after any update.
  Result<Relation> IntegratedView();
  /// σ + Π over T_RS: rows satisfying `predicate`, projected onto
  /// `attributes` (empty = all columns).
  Result<Relation> Query(const RowPredicate& predicate,
                         const std::vector<std::string>& attributes = {});
  /// Point lookup: T_RS rows whose `attribute` equals `value`.
  Result<Relation> Lookup(const std::string& attribute, const Value& value);

  /// The identification backing the current view (runs it if stale).
  Result<const IdentificationResult*> CurrentIdentification();

  /// Telemetry: how often identification actually ran vs queries served —
  /// the design-time/query-time split made visible.
  struct Stats {
    size_t identifications = 0;
    size_t queries = 0;
    size_t invalidations = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  Status Refresh();

  IdentifierConfig config_;
  Relation r_;
  Relation s_;
  std::optional<IdentificationResult> cache_;
  std::optional<Relation> merged_cache_;
  Stats stats_;
};

}  // namespace eid

#endif  // EID_EID_VIRTUAL_VIEW_H_
