// The integrated table T_RS (paper §4.1: T_RS = MT_RS ⋈ R ⟗ S; §6.2–6.3).
//
// Matched pairs merge into one row carrying both tuples' attributes;
// unmatched tuples of either relation appear with NULLs on the other side
// — exactly the prototype's printed integrated table. Within T_RS a
// real-world entity can still be modeled by more than one tuple (at most
// two: an unmatched R tuple and an unmatched S tuple that in truth
// coincide but could not be proven to); a T_RS tuple can potentially match
// another provided they have no conflicting non-NULL extended-key values —
// PotentialIntraMatches reports those residual candidates.

#ifndef EID_EID_INTEGRATE_H_
#define EID_EID_INTEGRATE_H_

#include "eid/identifier.h"

namespace eid {

/// How the integrated table lays out attributes.
enum class IntegrationLayout {
  /// R'-columns prefixed "R." then S'-columns prefixed "S." (the
  /// prototype's r_* / s_* layout).
  kSideBySide,
  /// One column per world attribute; matched pairs coalesce (values agree
  /// on shared attributes by construction of the match), unmatched rows
  /// fill what they have. Attributes private to one side keep one column.
  kMerged,
};

/// Builds T_RS from an identification result.
Result<Relation> BuildIntegratedTable(
    const IdentificationResult& result,
    IntegrationLayout layout = IntegrationLayout::kSideBySide,
    const std::string& name = "T_RS");

/// Pairs of T_RS-style residual candidates: an unmatched R row and an
/// unmatched S row with no conflicting non-NULL value on any extended-key
/// attribute (they *could* model the same entity; more knowledge would be
/// needed to decide). Indices refer to the source relations.
Result<std::vector<TuplePair>> PotentialIntraMatches(
    const IdentificationResult& result, const ExtendedKey& ext_key);

}  // namespace eid

#endif  // EID_EID_INTEGRATE_H_
