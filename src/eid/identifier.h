// EntityIdentifier — the library's central public API.
//
// Combines everything the paper proposes into one three-valued
// identification process (§3.2):
//
//   * extended-key equivalence with ILFD derivation fills the matching
//     table MT_RS;
//   * additional identity rules (validated per §3.2) may add matches;
//   * distinctness rules — user-supplied and/or induced from ILFDs by
//     Proposition 1 — fill the negative matching table NMT_RS;
//   * the uniqueness and consistency constraints are verified, yielding
//     the prototype's soundness verdict;
//   * every remaining pair is *undetermined* (Fig. 3's third region).
//
// The identification function is monotonic by construction: it only
// derives pairs certified by a rule, so supplying more rules/ILFDs can
// only grow the matched and non-matched sets (eid/monotonic.h audits this
// property across configuration updates).

#ifndef EID_EID_IDENTIFIER_H_
#define EID_EID_IDENTIFIER_H_

#include <optional>
#include <vector>

#include "eid/matcher.h"
#include "eid/negative.h"
#include "rules/distinctness_rule.h"
#include "rules/identity_rule.h"

namespace eid {

/// The three-valued outcome for one tuple pair (paper §3.2).
enum class MatchDecision { kMatch, kNonMatch, kUndetermined };

const char* MatchDecisionName(MatchDecision decision);

/// Sizes of the three regions of Fig. 3.
struct PairPartition {
  size_t matched = 0;
  size_t non_matched = 0;
  size_t undetermined = 0;
  size_t total = 0;
};

/// Full configuration of an identification run.
struct IdentifierConfig {
  AttributeCorrespondence correspondence;
  /// The extended key; when absent, only explicit identity rules match.
  std::optional<ExtendedKey> extended_key;
  IlfdSet ilfds;
  /// Additional identity rules, evaluated pairwise over extended tuples.
  std::vector<IdentityRule> identity_rules;
  /// Distinctness rules, evaluated pairwise over extended tuples.
  std::vector<DistinctnessRule> distinctness_rules;
  /// Also apply the Proposition 1 rule induced by every ILFD.
  bool distinctness_from_ilfds = true;
  MatcherOptions matcher_options;
};

/// Outcome of one identification run.
struct IdentificationResult {
  Relation r_extended;  // R' in world naming
  Relation s_extended;  // S'
  std::vector<Derivation> r_traces;
  std::vector<Derivation> s_traces;
  MatchTable matching{/*negative=*/false};
  NegativeResult negative;
  /// Soundness verdicts: uniqueness over MT, consistency across MT/NMT.
  Status uniqueness;
  Status consistency;
  PairPartition partition;
  /// Per-stage execution counters (extend_r, extend_s, key_join,
  /// identity_rules, distinctness_rules): wall time, thread count,
  /// candidate pairs vs. cross product, rule evaluations. All counts are
  /// deterministic across thread counts; wall_ms is not.
  exec::StageStatsSet stats;

  /// True when both constraints held — the prototype's "extended key is
  /// verified" outcome.
  bool Sound() const { return uniqueness.ok() && consistency.ok(); }

  /// Decision for one pair (indices into the source relations).
  MatchDecision Decide(size_t r_index, size_t s_index) const;

  /// Printable MT / NMT (paper Tables 7 / 4 layout).
  Result<Relation> MatchingRelation(const std::string& name = "MT") const;
  Result<Relation> NegativeRelation(const std::string& name = "NMT") const;
};

/// The identification engine. Construct once per configuration; Identify
/// may be called for any relation pair consistent with the correspondence.
class EntityIdentifier {
 public:
  explicit EntityIdentifier(IdentifierConfig config)
      : config_(std::move(config)) {}

  const IdentifierConfig& config() const { return config_; }
  IdentifierConfig& mutable_config() { return config_; }

  /// Runs the full identification process on (r, s).
  Result<IdentificationResult> Identify(const Relation& r,
                                        const Relation& s) const;

 private:
  IdentifierConfig config_;
};

}  // namespace eid

#endif  // EID_EID_IDENTIFIER_H_
