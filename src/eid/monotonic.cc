#include "eid/monotonic.h"

namespace eid {

std::string MonotonicityViolation::ToString() const {
  return "pair (R" + std::to_string(pair.r_index) + ", S" +
         std::to_string(pair.s_index) + ") changed from " +
         MatchDecisionName(before) + " to " + MatchDecisionName(after);
}

MonotonicEngine::MonotonicEngine(Relation r, Relation s,
                                 IdentifierConfig config)
    : r_(std::move(r)), s_(std::move(s)), config_(std::move(config)) {
  Status st = Rerun("initial");
  EID_CHECK(st.ok() && "initial identification failed");
}

Status MonotonicEngine::Rerun(const std::string& description) {
  EntityIdentifier identifier(config_);
  Result<IdentificationResult> next = identifier.Identify(r_, s_);
  if (!next.ok()) return next.status();

  // Audit monotonicity against the previous result (skip for the initial
  // run, which has no predecessor).
  if (!history_.empty()) {
    for (size_t i = 0; i < r_.size(); ++i) {
      for (size_t j = 0; j < s_.size(); ++j) {
        MatchDecision before = result_.Decide(i, j);
        if (before == MatchDecision::kUndetermined) continue;
        MatchDecision after = next->Decide(i, j);
        if (after != before) {
          violations_.push_back(
              MonotonicityViolation{TuplePair{i, j}, before, after});
        }
      }
    }
  }

  result_ = std::move(next).value();
  history_.push_back(MonotonicStep{description, result_.partition,
                                   result_.Sound()});
  return Status::Ok();
}

Status MonotonicEngine::AddIlfd(const Ilfd& ilfd) {
  config_.ilfds.Add(ilfd);
  return Rerun("ILFD: " + ilfd.ToString());
}

Status MonotonicEngine::AddIlfdText(const std::string& text) {
  EID_ASSIGN_OR_RETURN(Ilfd ilfd, ParseIlfd(text));
  return AddIlfd(ilfd);
}

Status MonotonicEngine::AddIdentityRule(IdentityRule rule) {
  EID_RETURN_IF_ERROR(rule.Validate());
  std::string description = "identity rule: " + rule.ToString();
  config_.identity_rules.push_back(std::move(rule));
  return Rerun(description);
}

Status MonotonicEngine::AddDistinctnessRule(DistinctnessRule rule) {
  EID_RETURN_IF_ERROR(rule.Validate());
  std::string description = "distinctness rule: " + rule.ToString();
  config_.distinctness_rules.push_back(std::move(rule));
  return Rerun(description);
}

Status MonotonicEngine::SetExtendedKey(ExtendedKey key) {
  std::string description = "extended key: " + key.ToString();
  config_.extended_key = std::move(key);
  return Rerun(description);
}

}  // namespace eid
