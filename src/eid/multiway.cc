#include "eid/multiway.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "eid/extension.h"
#include "eid/matcher.h"
#include "eid/negative.h"

namespace eid {
namespace {

/// Plain union–find over dense node ids.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Merge(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::vector<const EntityCluster*> MultiwayResult::MergedClusters() const {
  std::vector<const EntityCluster*> merged;
  for (const EntityCluster& c : clusters) {
    if (c.members.size() > 1) merged.push_back(&c);
  }
  return merged;
}

Result<MultiwayResult> IdentifyAll(const std::vector<Relation>& sources,
                                   const MultiwayConfig& config) {
  if (sources.size() < 2) {
    return Status::InvalidArgument("k-way identification requires k >= 2");
  }
  if (config.extended_key.empty() && config.identity_rules.empty()) {
    return Status::InvalidArgument(
        "neither an extended key nor identity rules were supplied");
  }
  for (const IdentityRule& rule : config.identity_rules) {
    EID_RETURN_IF_ERROR(rule.Validate());
  }

  MultiwayResult out;

  // Extend every source once. Sources are already world-named, so an
  // identity correspondence against an empty reference works: build a
  // correspondence from the source itself on the R side.
  for (const Relation& source : sources) {
    Relation empty_other("empty", Schema());
    AttributeCorrespondence corr;
    for (const Attribute& a : source.schema().attributes()) {
      EID_RETURN_IF_ERROR(
          corr.Add(AttributeMapping{a.name, a.name, std::nullopt}));
    }
    EID_ASSIGN_OR_RETURN(
        ExtensionResult ext,
        ExtendRelation(source, Side::kR, corr, config.extended_key,
                       config.ilfds, config.extension));
    out.extended.push_back(std::move(ext.extended));
  }

  // Distinctness rules: explicit + Proposition 1.
  std::vector<DistinctnessRule> rules = config.distinctness_rules;
  if (config.distinctness_from_ilfds) {
    for (const Ilfd& f : config.ilfds.ilfds()) {
      for (const Atom& c : f.consequent()) {
        EID_ASSIGN_OR_RETURN(
            DistinctnessRule rule,
            DistinctnessRuleFromIlfd(Ilfd::Implies(f.antecedent(), c)));
        rules.push_back(std::move(rule));
      }
    }
  }

  // Dense node ids.
  std::vector<size_t> offset(sources.size() + 1, 0);
  for (size_t i = 0; i < sources.size(); ++i) {
    offset[i + 1] = offset[i] + sources[i].size();
  }
  UnionFind uf(offset.back());

  // Pairwise identification.
  for (size_t i = 0; i < out.extended.size(); ++i) {
    for (size_t j = i + 1; j < out.extended.size(); ++j) {
      const Relation& a = out.extended[i];
      const Relation& b = out.extended[j];
      if (!config.extended_key.empty()) {
        EID_ASSIGN_OR_RETURN(std::vector<TuplePair> pairs,
                             JoinOnExtendedKey(a, b, config.extended_key));
        for (const TuplePair& p : pairs) {
          uf.Merge(offset[i] + p.r_index, offset[j] + p.s_index);
        }
      }
      for (const IdentityRule& rule : config.identity_rules) {
        for (size_t x = 0; x < a.size(); ++x) {
          for (size_t y = 0; y < b.size(); ++y) {
            if (rule.Matches(a.tuple(x), b.tuple(y)) == Truth::kTrue ||
                rule.Matches(b.tuple(y), a.tuple(x)) == Truth::kTrue) {
              uf.Merge(offset[i] + x, offset[j] + y);
            }
          }
        }
      }
      if (!rules.empty()) {
        EID_ASSIGN_OR_RETURN(NegativeResult negative,
                             BuildNegativeMatchingTable(a, b, rules));
        for (const TuplePair& p : negative.table.pairs()) {
          out.distinct_pairs.push_back(
              {MemberRef{i, p.r_index}, MemberRef{j, p.s_index}});
        }
      }
    }
  }

  // Clusters from the union-find.
  std::map<size_t, EntityCluster> by_root;
  for (size_t i = 0; i < sources.size(); ++i) {
    for (size_t r = 0; r < sources[i].size(); ++r) {
      by_root[uf.Find(offset[i] + r)].members.push_back(MemberRef{i, r});
    }
  }
  for (auto& [root, cluster] : by_root) {
    std::sort(cluster.members.begin(), cluster.members.end());
    out.clusters.push_back(std::move(cluster));
  }
  std::sort(out.clusters.begin(), out.clusters.end(),
            [](const EntityCluster& a, const EntityCluster& b) {
              return a.members.front() < b.members.front();
            });

  // Transitivity audit: one tuple per relation per cluster.
  out.transitivity = Status::Ok();
  for (const EntityCluster& cluster : out.clusters) {
    std::set<size_t> seen;
    for (const MemberRef& m : cluster.members) {
      if (!seen.insert(m.relation_index).second) {
        out.transitivity = Status::Unsound(
            "cluster holds two tuples of relation " +
            std::to_string(m.relation_index) +
            " — pairwise matches chain onto one relation (unsound "
            "extended key or rules)");
        break;
      }
    }
    if (!out.transitivity.ok()) break;
  }

  // Consistency audit: certified-distinct pairs must span clusters.
  out.consistency = Status::Ok();
  for (const auto& [x, y] : out.distinct_pairs) {
    size_t rx = uf.Find(offset[x.relation_index] + x.row_index);
    size_t ry = uf.Find(offset[y.relation_index] + y.row_index);
    if (rx == ry) {
      out.consistency = Status::ConstraintViolation(
          "a certified-distinct pair was merged into one cluster "
          "(consistency constraint, §3.2)");
      break;
    }
  }
  return out;
}

Result<Relation> BuildMultiwayIntegratedTable(
    const std::vector<Relation>& sources, const MultiwayResult& result,
    const std::string& name) {
  if (result.extended.size() != sources.size()) {
    return Status::InvalidArgument("result does not match sources");
  }
  // Column union over the *extended* relations, in first-seen order.
  std::vector<Attribute> attrs;
  for (const Relation& rel : result.extended) {
    for (const Attribute& a : rel.schema().attributes()) {
      bool present = false;
      for (const Attribute& existing : attrs) {
        if (existing.name == a.name) {
          present = true;
          break;
        }
      }
      if (!present) attrs.push_back(a);
    }
  }
  Schema schema(attrs);
  Relation out(name, schema);

  for (const EntityCluster& cluster : result.clusters) {
    Row row(schema.size(), Value::Null());
    for (const MemberRef& m : cluster.members) {
      const Relation& rel = result.extended[m.relation_index];
      for (size_t c = 0; c < rel.schema().size(); ++c) {
        const std::string& attr = rel.schema().attribute(c).name;
        size_t out_idx = *schema.IndexOf(attr);
        const Value& v = rel.row(m.row_index)[c];
        if (v.is_null()) continue;
        if (row[out_idx].is_null()) {
          row[out_idx] = v;
        } else if (!(row[out_idx] == v)) {
          return Status::FailedPrecondition(
              "attribute-value conflict on '" + attr +
              "' inside a cluster (" + row[out_idx].ToString() + " vs " +
              v.ToString() + "); resolve value conflicts after entity "
              "identification");
        }
      }
    }
    EID_RETURN_IF_ERROR(out.Insert(std::move(row)));
  }
  return out;
}

}  // namespace eid
