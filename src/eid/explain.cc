#include "eid/explain.h"

namespace eid {
namespace {

/// Derivation steps of one trace, rendered as "attr=v (via ILFD i: ...)".
void AppendDerivationSteps(const Derivation& trace, const IlfdSet& ilfds,
                           const ExtendedKey* key, const std::string& side,
                           std::string* out) {
  for (const DerivationStep& step : trace.steps) {
    if (key != nullptr && !key->Contains(step.attribute)) {
      // Intermediate attribute (e.g. county on the way to speciality):
      // still part of the chain, label it as such.
      *out += "    " + side + ": " + step.attribute + " = " +
              step.value.ToString() + "   [intermediate, via I" +
              std::to_string(step.ilfd_index + 1) + ": " +
              ilfds.ilfd(step.ilfd_index).ToString() + "]\n";
      continue;
    }
    *out += "    " + side + ": " + step.attribute + " = " +
            step.value.ToString() + "   [via I" +
            std::to_string(step.ilfd_index + 1) + ": " +
            ilfds.ilfd(step.ilfd_index).ToString() + "]\n";
  }
}

}  // namespace

Result<std::string> ExplainDecision(const IdentificationResult& result,
                                    const IdentifierConfig& config,
                                    size_t r_index, size_t s_index) {
  if (r_index >= result.r_extended.size() ||
      s_index >= result.s_extended.size()) {
    return Status::InvalidArgument("pair indices out of range");
  }
  TuplePair pair{r_index, s_index};
  MatchDecision decision = result.Decide(r_index, s_index);
  TupleView r_tuple = result.r_extended.tuple(r_index);
  TupleView s_tuple = result.s_extended.tuple(s_index);

  std::string out = "pair R" + std::to_string(r_index) + " " +
                    r_tuple.ToString() + "  /  S" + std::to_string(s_index) +
                    " " + s_tuple.ToString() + "\ndecision: " +
                    MatchDecisionName(decision) + "\n";

  switch (decision) {
    case MatchDecision::kMatch: {
      if (config.extended_key.has_value()) {
        const ExtendedKey& key = *config.extended_key;
        out += "  extended key " + key.ToString() +
               " agrees on every attribute:\n";
        bool full_agreement = true;
        for (const std::string& a : key.attributes()) {
          Value rv = r_tuple.GetOrNull(a);
          Value sv = s_tuple.GetOrNull(a);
          if (!NonNullEq(rv, sv)) full_agreement = false;
          out += "    " + a + ": R=" + rv.ToString() + "  S=" +
                 sv.ToString() + "\n";
        }
        if (full_agreement) {
          out += "  derived values:\n";
          std::string derivations;
          if (r_index < result.r_traces.size()) {
            AppendDerivationSteps(result.r_traces[r_index], config.ilfds,
                                  &key, "R", &derivations);
          }
          if (s_index < result.s_traces.size()) {
            AppendDerivationSteps(result.s_traces[s_index], config.ilfds,
                                  &key, "S", &derivations);
          }
          out += derivations.empty()
                     ? "    (none — both tuples carried the key directly)\n"
                     : derivations;
        } else {
          out += "  (matched by an explicit identity rule, not the "
                 "extended key)\n";
        }
      } else {
        out += "  matched by an explicit identity rule\n";
      }
      break;
    }
    case MatchDecision::kNonMatch: {
      for (const NegativePairEvidence& e : result.negative.evidence) {
        if (!(e.pair == pair)) continue;
        // Reconstruct the rule list the identifier used: explicit rules
        // first, then Proposition-1 induced ones in ILFD order.
        size_t explicit_count = config.distinctness_rules.size();
        if (e.rule_index < explicit_count) {
          out += "  certified distinct by rule '" +
                 config.distinctness_rules[e.rule_index].name() + "': " +
                 config.distinctness_rules[e.rule_index].ToString() + "\n";
        } else {
          size_t ilfd_pos = e.rule_index - explicit_count;
          // Map back through the decomposed consequents.
          size_t seen = 0;
          for (size_t fi = 0; fi < config.ilfds.size(); ++fi) {
            size_t heads = config.ilfds.ilfd(fi).consequent().size();
            if (ilfd_pos < seen + heads) {
              out += "  certified distinct by the Proposition-1 rule of I" +
                     std::to_string(fi + 1) + ": " +
                     config.ilfds.ilfd(fi).ToString() + "\n";
              break;
            }
            seen += heads;
          }
        }
        out += std::string("  orientation: ") +
               (e.flipped ? "e1 := S tuple, e2 := R tuple"
                          : "e1 := R tuple, e2 := S tuple") +
               "\n";
        break;
      }
      break;
    }
    case MatchDecision::kUndetermined: {
      if (config.extended_key.has_value()) {
        out += "  extended key " + config.extended_key->ToString() +
               " cannot be compared:\n";
        for (const std::string& a : config.extended_key->attributes()) {
          Value rv = r_tuple.GetOrNull(a);
          Value sv = s_tuple.GetOrNull(a);
          if (rv.is_null() || sv.is_null()) {
            out += "    " + a + " is NULL on " +
                   (rv.is_null() && sv.is_null()
                        ? "both sides"
                        : (rv.is_null() ? "the R side" : "the S side")) +
                   " — no ILFD derives it\n";
          } else if (!(rv == sv)) {
            out += "    " + a + " differs (R=" + rv.ToString() + ", S=" +
                   sv.ToString() +
                   ") but no distinctness rule certifies the pair\n";
          }
        }
      }
      out += "  more identity/distinctness knowledge is needed to decide "
             "this pair (paper §3.2)\n";
      break;
    }
  }
  return out;
}

}  // namespace eid
