// Matching table MT_RS and negative matching table NMT_RS (paper §3.2).
//
// Each entry pairs one R tuple with one S tuple. Because a tuple is
// uniquely identified within its relation by its candidate-key values, the
// printable table form consists of the two key-value lists (paper Table 7).
// Two constraints govern MT (paper §3.2):
//
//   Uniqueness   — no tuple in either relation is matched to more than one
//                  tuple in the other relation;
//   Consistency  — no pair appears in both MT and NMT.
//
// NMT entries carry no uniqueness constraint (a tuple is distinct from many
// tuples). MatchTable stores row-index pairs; it is a value type with no
// pointers into the relations, which are supplied again when a printable
// relation is requested.

#ifndef EID_EID_MATCH_TABLES_H_
#define EID_EID_MATCH_TABLES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "relational/relation.h"

namespace eid {

/// One matched (or non-matched) pair, by row index into the two relations.
struct TuplePair {
  size_t r_index = 0;
  size_t s_index = 0;

  bool operator==(const TuplePair& other) const {
    return r_index == other.r_index && s_index == other.s_index;
  }
  bool operator<(const TuplePair& other) const {
    if (r_index != other.r_index) return r_index < other.r_index;
    return s_index < other.s_index;
  }
};

struct TuplePairHash {
  size_t operator()(const TuplePair& p) const {
    // splitmix64-style mix of the two indices.
    uint64_t h = static_cast<uint64_t>(p.r_index) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<uint64_t>(p.s_index) + 0x9E3779B97F4A7C15ull +
         (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

/// Flat open-addressing membership set over row-index pairs, packed into
/// one uint64_t per entry (32 bits per side — a relation of 4G rows is
/// far beyond the in-RAM world this engine serves, and Pack checks).
/// A dense NMT inserts tens of millions of pairs; the node-based
/// std::unordered_set paid one allocation plus pointer chases per pair,
/// which dominated dense `identify` runs. Here an insert is one
/// linear-probe over a contiguous power-of-two array and teardown is a
/// single free.
class PackedPairSet {
 public:
  static uint64_t Pack(const TuplePair& p);

  /// Pre-sizes for `n` pairs (NMT construction knows the fired-pair
  /// count up front; growth doubles otherwise).
  void Reserve(size_t n);

  /// Inserts `key`; returns false if it was already present.
  bool Insert(uint64_t key);
  bool Contains(uint64_t key) const;

  /// Warms the cache line of `key`'s home slot. Bulk loaders issue this a
  /// few keys ahead of Insert: the table is far larger than cache for a
  /// dense NMT, and without the hint every insert stalls on one
  /// dependent DRAM access.
  void PrefetchSlot(uint64_t key) const {
    if (!slots_.empty()) {
      __builtin_prefetch(slots_.data() + (MixKey(key) & mask_), 1, 0);
    }
  }

  size_t size() const { return size_; }

 private:
  static constexpr uint64_t kEmpty = ~0ull;  // Pack() can never produce it

  /// splitmix64 finalizer — the probe hash. Full-avalanche so consecutive
  /// row pairs (the NMT's row-major insertion order) spread across the
  /// table instead of clustering a linear probe.
  static uint64_t MixKey(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  void Grow(size_t min_slots);

  std::vector<uint64_t> slots_;  // kEmpty-filled, power-of-two length
  uint64_t mask_ = 0;
  size_t size_ = 0;
};

/// A matching (or negative-matching) table over row-index pairs.
class MatchTable {
 public:
  /// `negative` selects NMT semantics (no uniqueness constraint).
  explicit MatchTable(bool negative = false) : negative_(negative) {}

  /// Rebuilds a table from a serialized pair list (snapshot load),
  /// re-running the Add-path constraint checks — a corrupted pair list
  /// that violates uniqueness fails here instead of resurfacing later as
  /// an inconsistent table.
  static Result<MatchTable> FromPairs(bool negative,
                                      const std::vector<TuplePair>& pairs);

  bool negative() const { return negative_; }
  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }
  const std::vector<TuplePair>& pairs() const { return pairs_; }

  /// Adds a pair. For a (positive) matching table, violating the
  /// uniqueness constraint returns ConstraintViolation and leaves the
  /// table unchanged; re-adding an existing pair is idempotent OK.
  Status Add(TuplePair pair);

  /// Bulk form of Add for negative tables: `n` pairs read `stride` bytes
  /// apart starting at `first` (the NMT fold consumes fired-pair records
  /// that embed the TuplePair as their first member). Same semantics as
  /// n calls to Add — duplicates are skipped idempotently — but the
  /// membership probes are issued with a prefetch pipeline: a dense NMT's
  /// probe table far exceeds cache, and the serial Add loop stalled on
  /// one dependent DRAM access per pair.
  Status AddNegativeBatch(const TuplePair* first, size_t n,
                          size_t stride = sizeof(TuplePair));

  /// Pre-sizes the pair store and lookup structures for `n` pairs (NMT
  /// construction knows the fired-pair count up front).
  void Reserve(size_t n);

  bool Contains(const TuplePair& pair) const;

  /// True if the given R (S) row already participates in some pair.
  bool HasR(size_t r_index) const {
    return r_index < by_r_.size() && by_r_[r_index] != kNoPair;
  }
  bool HasS(size_t s_index) const {
    return s_index < by_s_.size() && by_s_[s_index] != kNoPair;
  }

  /// The S row matched with R row `r_index`, if any. For negative tables
  /// (where several pairs may share an index) the first added is returned.
  std::optional<size_t> MatchOfR(size_t r_index) const;
  std::optional<size_t> MatchOfS(size_t s_index) const;

  /// The printable relation form over the relations the indices refer to:
  /// key attributes of R prefixed "R.", then key attributes of S prefixed
  /// "S." — the paper's Table 7 layout.
  Result<Relation> ToRelation(const Relation& r, const Relation& s,
                              const std::string& name = "MT") const;

  /// Consistency constraint (paper §3.2): no pair in both tables. `mt`
  /// must be positive and `nmt` negative.
  static Status CheckConsistency(const MatchTable& mt, const MatchTable& nmt);

 private:
  static constexpr size_t kNoPair = SIZE_MAX;

  /// One-time switch from sorted-order membership to the hash set, built
  /// from the pairs already stored; called on the first out-of-order Add.
  void MigrateToHash();

  bool negative_ = false;
  // True while every added pair has been strictly greater (row-major)
  // than its predecessor — the order the staged fold emits and snapshots
  // serialize. While it holds, membership is a binary search over
  // `pairs_` and no side structure is maintained at all: building a hash
  // set over a dense NMT's tens of millions of pairs was the single
  // hottest site in dense `identify` profiles, and nothing probes NMT
  // membership often enough during identification to repay it.
  bool sorted_ = true;
  std::vector<TuplePair> pairs_;
  // Hash membership, populated by MigrateToHash on the first
  // out-of-order Add (incremental updates) and authoritative from then
  // on. Flat open addressing: the node-based std::unordered_set paid an
  // allocation plus pointer chases per pair.
  PackedPairSet members_;
  // First pair index per side (kNoPair = absent), for uniqueness checks
  // and lookups. Row indices are dense and bounded by the relation
  // sizes, so a flat vector beats a hash map: the NMT path writes these
  // once per pair.
  std::vector<size_t> by_r_;
  std::vector<size_t> by_s_;
};

}  // namespace eid

#endif  // EID_EID_MATCH_TABLES_H_
