// Matching table MT_RS and negative matching table NMT_RS (paper §3.2).
//
// Each entry pairs one R tuple with one S tuple. Because a tuple is
// uniquely identified within its relation by its candidate-key values, the
// printable table form consists of the two key-value lists (paper Table 7).
// Two constraints govern MT (paper §3.2):
//
//   Uniqueness   — no tuple in either relation is matched to more than one
//                  tuple in the other relation;
//   Consistency  — no pair appears in both MT and NMT.
//
// NMT entries carry no uniqueness constraint (a tuple is distinct from many
// tuples). MatchTable stores row-index pairs; it is a value type with no
// pointers into the relations, which are supplied again when a printable
// relation is requested.

#ifndef EID_EID_MATCH_TABLES_H_
#define EID_EID_MATCH_TABLES_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relational/relation.h"

namespace eid {

/// One matched (or non-matched) pair, by row index into the two relations.
struct TuplePair {
  size_t r_index = 0;
  size_t s_index = 0;

  bool operator==(const TuplePair& other) const {
    return r_index == other.r_index && s_index == other.s_index;
  }
  bool operator<(const TuplePair& other) const {
    if (r_index != other.r_index) return r_index < other.r_index;
    return s_index < other.s_index;
  }
};

struct TuplePairHash {
  size_t operator()(const TuplePair& p) const {
    // splitmix64-style mix of the two indices.
    uint64_t h = static_cast<uint64_t>(p.r_index) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<uint64_t>(p.s_index) + 0x9E3779B97F4A7C15ull +
         (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

/// A matching (or negative-matching) table over row-index pairs.
class MatchTable {
 public:
  /// `negative` selects NMT semantics (no uniqueness constraint).
  explicit MatchTable(bool negative = false) : negative_(negative) {}

  /// Rebuilds a table from a serialized pair list (snapshot load),
  /// re-running the Add-path constraint checks — a corrupted pair list
  /// that violates uniqueness fails here instead of resurfacing later as
  /// an inconsistent table.
  static Result<MatchTable> FromPairs(bool negative,
                                      const std::vector<TuplePair>& pairs);

  bool negative() const { return negative_; }
  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }
  const std::vector<TuplePair>& pairs() const { return pairs_; }

  /// Adds a pair. For a (positive) matching table, violating the
  /// uniqueness constraint returns ConstraintViolation and leaves the
  /// table unchanged; re-adding an existing pair is idempotent OK.
  Status Add(TuplePair pair);

  /// Pre-sizes the pair store and lookup structures for `n` pairs (NMT
  /// construction knows the fired-pair count up front).
  void Reserve(size_t n);

  bool Contains(const TuplePair& pair) const;

  /// True if the given R (S) row already participates in some pair.
  bool HasR(size_t r_index) const { return by_r_.count(r_index) > 0; }
  bool HasS(size_t s_index) const { return by_s_.count(s_index) > 0; }

  /// The S row matched with R row `r_index`, if any. For negative tables
  /// (where several pairs may share an index) the first added is returned.
  std::optional<size_t> MatchOfR(size_t r_index) const;
  std::optional<size_t> MatchOfS(size_t s_index) const;

  /// The printable relation form over the relations the indices refer to:
  /// key attributes of R prefixed "R.", then key attributes of S prefixed
  /// "S." — the paper's Table 7 layout.
  Result<Relation> ToRelation(const Relation& r, const Relation& s,
                              const std::string& name = "MT") const;

  /// Consistency constraint (paper §3.2): no pair in both tables. `mt`
  /// must be positive and `nmt` negative.
  static Status CheckConsistency(const MatchTable& mt, const MatchTable& nmt);

 private:
  bool negative_ = false;
  std::vector<TuplePair> pairs_;
  // Membership set: Contains must stay O(1) even for negative tables,
  // whose NMT grows with the pair cross product.
  std::unordered_set<TuplePair, TuplePairHash> members_;
  // First pair index per side, for uniqueness checks and lookups.
  std::unordered_map<size_t, size_t> by_r_;
  std::unordered_map<size_t, size_t> by_s_;
};

}  // namespace eid

#endif  // EID_EID_MATCH_TABLES_H_
