// Human-readable justifications for identification decisions.
//
// Soundness is the paper's whole point: a match must be defensible. Every
// decision this library takes is backed by recorded provenance — ILFD
// derivation steps (which rule produced which extended-key value) and
// negative-pair evidence (which distinctness rule fired, in which
// orientation). ExplainDecision turns that provenance into the
// justification a DBA reviews before acting on a match (the §4 example:
// before firing somebody, say *why* the records were identified).

#ifndef EID_EID_EXPLAIN_H_
#define EID_EID_EXPLAIN_H_

#include <string>

#include "eid/identifier.h"

namespace eid {

/// Explains the decision for pair (r_index, s_index) of `result`, which
/// must have been produced by an identifier configured as `config` (the
/// config supplies rule/ILFD texts the result only indexes).
///
/// The explanation contains, per case:
///  * match        — the extended-key agreement, and for every derived key
///                   value the ILFD chain that produced it;
///  * non-match    — the certifying distinctness rule and its orientation
///                   (or its origin ILFD when Proposition-1 induced);
///  * undetermined — which extended-key attributes are missing (NULL) on
///                   which side, i.e. what knowledge would decide the pair.
Result<std::string> ExplainDecision(const IdentificationResult& result,
                                    const IdentifierConfig& config,
                                    size_t r_index, size_t s_index);

}  // namespace eid

#endif  // EID_EID_EXPLAIN_H_
