#include "eid/correspondence.h"

#include "relational/algebra.h"

namespace eid {

AttributeCorrespondence AttributeCorrespondence::Identity(const Relation& r,
                                                          const Relation& s) {
  AttributeCorrespondence out;
  for (const Attribute& a : r.schema().attributes()) {
    AttributeMapping m;
    m.world = a.name;
    m.in_r = a.name;
    if (s.schema().Contains(a.name)) m.in_s = a.name;
    Status st = out.Add(std::move(m));
    EID_CHECK(st.ok());
  }
  for (const Attribute& a : s.schema().attributes()) {
    if (out.Find(a.name) != nullptr) continue;
    AttributeMapping m;
    m.world = a.name;
    m.in_s = a.name;
    Status st = out.Add(std::move(m));
    EID_CHECK(st.ok());
  }
  return out;
}

Status AttributeCorrespondence::Add(AttributeMapping mapping) {
  if (mapping.world.empty()) {
    return Status::InvalidArgument("world attribute name must be non-empty");
  }
  if (Find(mapping.world) != nullptr) {
    return Status::AlreadyExists("world attribute '" + mapping.world +
                                 "' already mapped");
  }
  if (!mapping.in_r.has_value() && !mapping.in_s.has_value()) {
    return Status::InvalidArgument("mapping for '" + mapping.world +
                                   "' names neither side");
  }
  mappings_.push_back(std::move(mapping));
  return Status::Ok();
}

const AttributeMapping* AttributeCorrespondence::Find(
    const std::string& world) const {
  for (const AttributeMapping& m : mappings_) {
    if (m.world == world) return &m;
  }
  return nullptr;
}

std::vector<std::string> AttributeCorrespondence::WorldAttributesOf(
    Side side) const {
  std::vector<std::string> out;
  for (const AttributeMapping& m : mappings_) {
    const std::optional<std::string>& local = (side == Side::kR) ? m.in_r
                                                                 : m.in_s;
    if (local.has_value()) out.push_back(m.world);
  }
  return out;
}

std::vector<std::string> AttributeCorrespondence::CommonWorldAttributes()
    const {
  std::vector<std::string> out;
  for (const AttributeMapping& m : mappings_) {
    if (m.in_r.has_value() && m.in_s.has_value()) out.push_back(m.world);
  }
  return out;
}

std::optional<std::string> AttributeCorrespondence::LocalName(
    const std::string& world, Side side) const {
  const AttributeMapping* m = Find(world);
  if (m == nullptr) return std::nullopt;
  return (side == Side::kR) ? m->in_r : m->in_s;
}

Status AttributeCorrespondence::ValidateAgainst(const Relation& r,
                                                const Relation& s) const {
  for (const AttributeMapping& m : mappings_) {
    if (m.in_r.has_value() && !r.schema().Contains(*m.in_r)) {
      return Status::NotFound("mapped attribute '" + *m.in_r +
                              "' not in relation '" + r.name() + "'");
    }
    if (m.in_s.has_value() && !s.schema().Contains(*m.in_s)) {
      return Status::NotFound("mapped attribute '" + *m.in_s +
                              "' not in relation '" + s.name() + "'");
    }
  }
  return Status::Ok();
}

Result<std::vector<std::string>> AttributeCorrespondence::WorldNames(
    const Relation& relation, Side side) const {
  std::vector<std::string> names;
  names.reserve(relation.schema().size());
  for (const Attribute& a : relation.schema().attributes()) {
    std::string world_name = a.name;
    for (const AttributeMapping& m : mappings_) {
      const std::optional<std::string>& local =
          (side == Side::kR) ? m.in_r : m.in_s;
      if (local.has_value() && *local == a.name) {
        world_name = m.world;
        break;
      }
    }
    names.push_back(std::move(world_name));
  }
  // Detect collisions (an unmapped local name equal to a world name).
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      if (names[i] == names[j]) {
        return Status::InvalidArgument(
            "world naming collision on '" + names[i] + "' in relation '" +
            relation.name() + "'");
      }
    }
  }
  return names;
}

Result<Relation> AttributeCorrespondence::ToWorldNaming(
    const Relation& relation, Side side) const {
  EID_ASSIGN_OR_RETURN(std::vector<std::string> names,
                       WorldNames(relation, side));
  return RenameAll(relation, names);
}

Result<Relation> AttributeCorrespondence::ToWorldSchema(
    const Relation& relation, Side side) const {
  EID_ASSIGN_OR_RETURN(std::vector<std::string> names,
                       WorldNames(relation, side));
  std::vector<Attribute> attrs = relation.schema().attributes();
  for (size_t i = 0; i < attrs.size(); ++i) attrs[i].name = names[i];
  Schema schema(std::move(attrs));
  Relation out(relation.name(), schema);
  for (const KeyDef& key : relation.keys()) {
    std::vector<std::string> key_names;
    for (size_t i : key.attribute_indices) {
      key_names.push_back(schema.attribute(i).name);
    }
    EID_RETURN_IF_ERROR(out.DeclareKey(key_names));
  }
  return out;
}

}  // namespace eid
