#include "eid/virtual_view.h"

namespace eid {

Status VirtualIntegrator::InsertR(Row row) {
  EID_RETURN_IF_ERROR(r_.Insert(std::move(row)));
  cache_.reset();
  merged_cache_.reset();
  ++stats_.invalidations;
  return Status::Ok();
}

Status VirtualIntegrator::InsertS(Row row) {
  EID_RETURN_IF_ERROR(s_.Insert(std::move(row)));
  cache_.reset();
  merged_cache_.reset();
  ++stats_.invalidations;
  return Status::Ok();
}

Status VirtualIntegrator::Refresh() {
  if (cache_.has_value()) return Status::Ok();
  EntityIdentifier identifier(config_);
  Result<IdentificationResult> result = identifier.Identify(r_, s_);
  if (!result.ok()) return result.status();
  cache_ = std::move(result).value();
  Result<Relation> merged =
      BuildIntegratedTable(*cache_, IntegrationLayout::kMerged, "T_RS");
  if (!merged.ok()) return merged.status();
  merged_cache_ = std::move(merged).value();
  ++stats_.identifications;
  return Status::Ok();
}

Result<const IdentificationResult*> VirtualIntegrator::CurrentIdentification() {
  EID_RETURN_IF_ERROR(Refresh());
  return &*cache_;
}

Result<Relation> VirtualIntegrator::IntegratedView() {
  EID_RETURN_IF_ERROR(Refresh());
  ++stats_.queries;
  return *merged_cache_;
}

Result<Relation> VirtualIntegrator::Query(
    const RowPredicate& predicate,
    const std::vector<std::string>& attributes) {
  EID_RETURN_IF_ERROR(Refresh());
  ++stats_.queries;
  Relation selected = Select(*merged_cache_, predicate);
  if (attributes.empty()) return selected;
  return Project(selected, attributes);
}

Result<Relation> VirtualIntegrator::Lookup(const std::string& attribute,
                                           const Value& value) {
  return Query([&](const TupleView& t) {
    return NonNullEq(t.GetOrNull(attribute), value);
  });
}

}  // namespace eid
