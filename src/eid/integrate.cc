#include "eid/integrate.h"

namespace eid {
namespace {

Result<Relation> BuildSideBySide(const IdentificationResult& result,
                                 const std::string& name) {
  const Relation& r = result.r_extended;
  const Relation& s = result.s_extended;
  std::vector<Attribute> attrs;
  for (const Attribute& a : r.schema().attributes()) {
    attrs.push_back(Attribute{"R." + a.name, a.type});
  }
  for (const Attribute& a : s.schema().attributes()) {
    attrs.push_back(Attribute{"S." + a.name, a.type});
  }
  Relation out(name, Schema(std::move(attrs)));

  auto emit = [&](const Row* rrow, const Row* srow) -> Status {
    Row row;
    row.reserve(r.schema().size() + s.schema().size());
    for (size_t i = 0; i < r.schema().size(); ++i) {
      row.push_back(rrow ? (*rrow)[i] : Value::Null());
    }
    for (size_t i = 0; i < s.schema().size(); ++i) {
      row.push_back(srow ? (*srow)[i] : Value::Null());
    }
    return out.Insert(std::move(row));
  };

  for (const TuplePair& p : result.matching.pairs()) {
    EID_RETURN_IF_ERROR(emit(&r.row(p.r_index), &s.row(p.s_index)));
  }
  for (size_t i = 0; i < r.size(); ++i) {
    if (!result.matching.HasR(i)) {
      EID_RETURN_IF_ERROR(emit(&r.row(i), nullptr));
    }
  }
  for (size_t j = 0; j < s.size(); ++j) {
    if (!result.matching.HasS(j)) {
      EID_RETURN_IF_ERROR(emit(nullptr, &s.row(j)));
    }
  }
  return out;
}

Result<Relation> BuildMerged(const IdentificationResult& result,
                             const std::string& name) {
  const Relation& r = result.r_extended;
  const Relation& s = result.s_extended;
  // World attribute order: R' attributes, then S'-only attributes.
  std::vector<Attribute> attrs = r.schema().attributes();
  for (const Attribute& a : s.schema().attributes()) {
    if (!r.schema().Contains(a.name)) attrs.push_back(a);
  }
  Schema schema(std::move(attrs));
  Relation out(name, schema);

  auto emit = [&](const Row* rrow, const Row* srow) -> Status {
    Row row;
    row.reserve(schema.size());
    for (size_t i = 0; i < schema.size(); ++i) {
      const std::string& world = schema.attribute(i).name;
      Value v = Value::Null();
      if (rrow != nullptr) {
        std::optional<size_t> ri = r.schema().IndexOf(world);
        if (ri.has_value()) v = (*rrow)[*ri];
      }
      if (v.is_null() && srow != nullptr) {
        std::optional<size_t> si = s.schema().IndexOf(world);
        if (si.has_value()) v = (*srow)[*si];
      }
      row.push_back(std::move(v));
    }
    return out.Insert(std::move(row));
  };

  for (const TuplePair& p : result.matching.pairs()) {
    // Conflicting non-NULL values on a shared attribute would indicate an
    // attribute-value conflict (outside this paper's scope, §2); they are
    // surfaced rather than silently coalesced.
    const Row& rrow = r.row(p.r_index);
    const Row& srow = s.row(p.s_index);
    for (size_t i = 0; i < r.schema().size(); ++i) {
      const std::string& world = r.schema().attribute(i).name;
      std::optional<size_t> si = s.schema().IndexOf(world);
      if (!si.has_value()) continue;
      if (!rrow[i].is_null() && !srow[*si].is_null() &&
          !(rrow[i] == srow[*si])) {
        return Status::FailedPrecondition(
            "attribute-value conflict on '" + world + "' for matched pair (" +
            rrow[i].ToString() + " vs " + srow[*si].ToString() +
            "); resolve value conflicts after entity identification "
            "(paper §2, instance-level problems)");
      }
    }
    EID_RETURN_IF_ERROR(emit(&rrow, &srow));
  }
  for (size_t i = 0; i < r.size(); ++i) {
    if (!result.matching.HasR(i)) EID_RETURN_IF_ERROR(emit(&r.row(i), nullptr));
  }
  for (size_t j = 0; j < s.size(); ++j) {
    if (!result.matching.HasS(j)) EID_RETURN_IF_ERROR(emit(nullptr, &s.row(j)));
  }
  return out;
}

}  // namespace

Result<Relation> BuildIntegratedTable(const IdentificationResult& result,
                                      IntegrationLayout layout,
                                      const std::string& name) {
  switch (layout) {
    case IntegrationLayout::kSideBySide:
      return BuildSideBySide(result, name);
    case IntegrationLayout::kMerged:
      return BuildMerged(result, name);
  }
  return Status::Internal("unknown integration layout");
}

Result<std::vector<TuplePair>> PotentialIntraMatches(
    const IdentificationResult& result, const ExtendedKey& ext_key) {
  const Relation& r = result.r_extended;
  const Relation& s = result.s_extended;
  std::vector<size_t> r_idx, s_idx;
  for (const std::string& a : ext_key.attributes()) {
    EID_ASSIGN_OR_RETURN(size_t ri, r.schema().RequireIndex(a));
    EID_ASSIGN_OR_RETURN(size_t si, s.schema().RequireIndex(a));
    r_idx.push_back(ri);
    s_idx.push_back(si);
  }
  std::vector<TuplePair> out;
  for (size_t i = 0; i < r.size(); ++i) {
    if (result.matching.HasR(i)) continue;
    for (size_t j = 0; j < s.size(); ++j) {
      if (result.matching.HasS(j)) continue;
      if (result.negative.table.Contains(TuplePair{i, j})) continue;
      bool conflict = false;
      for (size_t k = 0; k < r_idx.size(); ++k) {
        const Value& a = r.row(i)[r_idx[k]];
        const Value& b = s.row(j)[s_idx[k]];
        if (!a.is_null() && !b.is_null() && !(a == b)) {
          conflict = true;
          break;
        }
      }
      if (!conflict) out.push_back(TuplePair{i, j});
    }
  }
  return out;
}

}  // namespace eid
