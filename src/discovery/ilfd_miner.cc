#include "discovery/ilfd_miner.h"

#include <algorithm>
#include <map>
#include <set>

namespace eid {
namespace {

/// Observed consequent values for one antecedent pattern: the candidate
/// survives only if a single non-NULL value was ever observed.
struct Observation {
  Value value;
  size_t support = 0;
  bool contradicted = false;
};

/// Canonical map key for a set of (attr, value) conditions.
std::string PatternKey(const std::vector<Atom>& atoms) {
  std::string key;
  for (const Atom& a : atoms) {
    std::string v = a.value.ToString();
    key += std::to_string(a.attribute.size()) + ":" + a.attribute + "=" +
           std::to_string(v.size()) + ":" + v + "|" +
           static_cast<char>('0' + static_cast<int>(a.value.type()));
  }
  return key;
}

bool AttrAllowed(const std::vector<std::string>& allowed,
                 const std::string& attr) {
  if (allowed.empty()) return true;
  return std::find(allowed.begin(), allowed.end(), attr) != allowed.end();
}

}  // namespace

std::vector<MinedIlfd> MineIlfds(const Relation& relation,
                                 const MinerOptions& options) {
  const Schema& schema = relation.schema();
  const size_t n = schema.size();

  // Attribute cardinalities (distinct non-NULL values).
  std::vector<size_t> cardinality(n, 0);
  for (size_t a = 0; a < n; ++a) {
    std::set<std::string> values;
    for (const Row& row : relation.rows()) {
      if (!row[a].is_null()) values.insert(row[a].ToString());
    }
    cardinality[a] = values.size();
  }
  auto antecedent_ok = [&](size_t a) {
    return options.max_attribute_cardinality == 0 ||
           cardinality[a] <= options.max_attribute_cardinality;
  };

  // pattern -> (consequent attribute index -> observation).
  // Patterns: all antecedent subsets of size 1..max_antecedent over
  // non-NULL values of each row.
  std::map<std::string, std::map<size_t, Observation>> table;
  std::map<std::string, std::vector<Atom>> pattern_atoms;

  auto observe = [&](const std::vector<Atom>& antecedent, const Row& row) {
    std::string key = PatternKey(antecedent);
    pattern_atoms.emplace(key, antecedent);
    std::map<size_t, Observation>& per_consequent = table[key];
    std::set<std::string> ante_attrs;
    for (const Atom& a : antecedent) ante_attrs.insert(a.attribute);
    for (size_t b = 0; b < schema.size(); ++b) {
      const std::string& battr = schema.attribute(b).name;
      if (ante_attrs.count(battr) > 0) continue;
      if (!AttrAllowed(options.consequent_attributes, battr)) continue;
      if (row[b].is_null()) continue;  // missing: neither support nor refute
      auto [it, inserted] = per_consequent.emplace(
          b, Observation{row[b], 1, false});
      if (!inserted) {
        ++it->second.support;
        if (!(it->second.value == row[b])) it->second.contradicted = true;
      }
    }
  };

  for (const Row& row : relation.rows()) {
    // Size-1 antecedents.
    for (size_t a = 0; a < n; ++a) {
      if (row[a].is_null() || !antecedent_ok(a)) continue;
      observe({Atom{schema.attribute(a).name, row[a]}}, row);
    }
    // Size-2 antecedents (pairs may use high-cardinality attributes, like
    // the paper's (name, street) antecedents of I5/I6).
    if (options.max_antecedent >= 2) {
      for (size_t a = 0; a < n; ++a) {
        if (row[a].is_null()) continue;
        for (size_t b = a + 1; b < n; ++b) {
          if (row[b].is_null()) continue;
          observe({Atom{schema.attribute(a).name, row[a]},
                   Atom{schema.attribute(b).name, row[b]}},
                  row);
        }
      }
    }
  }

  // Emit surviving candidates deterministically (map order is canonical).
  std::vector<MinedIlfd> mined;
  for (const auto& [key, per_consequent] : table) {
    const std::vector<Atom>& antecedent = pattern_atoms.at(key);
    for (const auto& [b, obs] : per_consequent) {
      if (obs.contradicted || obs.support < options.min_support) continue;
      mined.push_back(MinedIlfd{
          Ilfd::Implies(antecedent,
                        Atom{schema.attribute(b).name, obs.value}),
          obs.support});
    }
  }
  std::stable_sort(mined.begin(), mined.end(),
                   [](const MinedIlfd& x, const MinedIlfd& y) {
                     if (x.ilfd.antecedent().size() !=
                         y.ilfd.antecedent().size()) {
                       return x.ilfd.antecedent().size() <
                              y.ilfd.antecedent().size();
                     }
                     return x.ilfd.ToString() < y.ilfd.ToString();
                   });

  if (!options.prune_implied) return mined;

  // Closure-based pruning: accept candidates in order (smaller antecedents
  // first, i.e. more general rules), skipping any already implied.
  std::vector<MinedIlfd> kept;
  IlfdSet accepted;
  for (MinedIlfd& candidate : mined) {
    if (accepted.Implies(candidate.ilfd)) continue;
    accepted.Add(candidate.ilfd);
    kept.push_back(std::move(candidate));
  }
  return kept;
}

IlfdSet MineIlfdSet(const Relation& relation, const MinerOptions& options) {
  IlfdSet out;
  for (MinedIlfd& m : MineIlfds(relation, options)) {
    out.Add(std::move(m.ilfd));
  }
  return out;
}

std::vector<MinedIlfd> ConfirmOn(const std::vector<MinedIlfd>& candidates,
                                 const Relation& witness) {
  std::vector<MinedIlfd> confirmed;
  for (const MinedIlfd& candidate : candidates) {
    bool ok = true;
    for (size_t i = 0; i < witness.size() && ok; ++i) {
      if (!candidate.ilfd.SatisfiedBy(witness.tuple(i))) ok = false;
    }
    if (ok) confirmed.push_back(candidate);
  }
  return confirmed;
}

}  // namespace eid
