// Discovering extended-key candidates from an entity universe.
//
// §4.1 defines the extended key as a *minimal* identifying attribute set
// for the integrated world but leaves finding one to the DBA. Given a
// ground-truth universe relation (or any trusted sample of the integrated
// world), this module enumerates every minimal identifying attribute set —
// the candidate extended keys — by breadth-first subset search with
// superset pruning.

#ifndef EID_DISCOVERY_KEY_DISCOVERY_H_
#define EID_DISCOVERY_KEY_DISCOVERY_H_

#include <vector>

#include "eid/extended_key.h"
#include "ilfd/ilfd_set.h"
#include "relational/relation.h"

namespace eid {

/// Options for DiscoverMinimalKeys.
struct KeyDiscoveryOptions {
  /// Largest attribute-set size to examine.
  size_t max_size = 4;
  /// Attributes to exclude (e.g. the synthetic domain attribute).
  std::vector<std::string> exclude;
  /// Safety cap on examined subsets.
  size_t enumeration_cap = 100000;
};

/// All minimal identifying attribute sets of `universe` up to
/// options.max_size, smallest first (then lexicographic). Every returned
/// key passes ExtendedKey::VerifyAgainstUniverse.
Result<std::vector<ExtendedKey>> DiscoverMinimalKeys(
    const Relation& universe, const KeyDiscoveryOptions& options = {});

/// Ranks candidate keys by how usable they are for matching a given
/// relation pair: keys whose every attribute is modeled or ILFD-derivable
/// on both sides come first; ties break toward fewer attributes. Keys with
/// an attribute unreachable on some side are dropped.
struct RankedKey {
  ExtendedKey key;
  /// Attributes needing ILFD derivation on R / S (smaller = cheaper).
  size_t derived_on_r = 0;
  size_t derived_on_s = 0;
};
std::vector<RankedKey> RankKeysForPair(const std::vector<ExtendedKey>& keys,
                                       const AttributeCorrespondence& corr,
                                       const IlfdSet& ilfds);

}  // namespace eid

#endif  // EID_DISCOVERY_KEY_DISCOVERY_H_
