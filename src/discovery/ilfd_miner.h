// Mining candidate ILFDs from relation instances.
//
// The paper points at this twice: "advanced techniques in knowledge
// discovery may also suggest some identity or distinctness rules that have
// been overlooked by the database administrator" (§3.2), and semantic
// information "can be supplied either by database administrators during
// schema integration or through some knowledge acquisition tools"
// (Conclusion). This module is that acquisition tool: it proposes
// value-level dependencies
//
//     (A_1=a_1) ∧ … ∧ (A_k=a_k)  →  (B=b)
//
// that *hold in the instance* with a minimum support. Mined candidates are
// suggestions — an instance-level regularity is not yet a semantic
// constraint of the integrated world — so each carries its support and
// must be confirmed by a DBA before use (the paper's soundness stance).

#ifndef EID_DISCOVERY_ILFD_MINER_H_
#define EID_DISCOVERY_ILFD_MINER_H_

#include <string>
#include <vector>

#include "ilfd/ilfd_set.h"
#include "relational/relation.h"

namespace eid {

/// One mined candidate with its evidence.
struct MinedIlfd {
  Ilfd ilfd;
  /// Tuples satisfying the antecedent (all of them satisfy the consequent,
  /// or the candidate would not be emitted).
  size_t support = 0;

  bool operator==(const MinedIlfd& other) const {
    return ilfd == other.ilfd && support == other.support;
  }
};

/// Mining options.
struct MinerOptions {
  /// Minimum antecedent support: candidates seen fewer times are noise.
  size_t min_support = 2;
  /// Maximum antecedent size (1 = single-condition rules like the paper's
  /// I1–I4/I7; 2 adds pair rules like I5/I6/I8).
  size_t max_antecedent = 2;
  /// Drop candidates implied by the already-accepted ones (closure-based
  /// redundancy pruning) so the output approximates a minimal cover.
  bool prune_implied = true;
  /// Attributes allowed in consequents; empty = all attributes.
  std::vector<std::string> consequent_attributes;
  /// NULL antecedent/consequent values never participate.
  /// Cap on distinct values per attribute considered for antecedents —
  /// near-key attributes (almost every value distinct) produce per-tuple
  /// "rules" that are overfit; attributes above the cap are skipped for
  /// antecedent roles unless paired (max_antecedent ≥ 2 pairs still use
  /// them, mirroring I5/I6's (name, street) antecedents).
  size_t max_attribute_cardinality = 0;  // 0 = unlimited
};

/// Mines candidate ILFDs from `relation`. Deterministic: candidates are
/// ordered by antecedent size, then attribute names, then values.
std::vector<MinedIlfd> MineIlfds(const Relation& relation,
                                 const MinerOptions& options = {});

/// Convenience: mined candidates at or above `min_support`, as an IlfdSet
/// (supports dropped). The caller should review before trusting.
IlfdSet MineIlfdSet(const Relation& relation, const MinerOptions& options = {});

/// Cross-validates mined ILFDs against a second instance: returns the
/// subset of `candidates` that `witness` also satisfies (no violating
/// tuple). Mined-on-R-confirmed-on-S is the minimum bar before a DBA
/// review (both instances can still share a coincidence).
std::vector<MinedIlfd> ConfirmOn(const std::vector<MinedIlfd>& candidates,
                                 const Relation& witness);

}  // namespace eid

#endif  // EID_DISCOVERY_ILFD_MINER_H_
