#include "discovery/key_discovery.h"

#include <algorithm>
#include <set>

namespace eid {

Result<std::vector<ExtendedKey>> DiscoverMinimalKeys(
    const Relation& universe, const KeyDiscoveryOptions& options) {
  std::vector<std::string> attrs;
  for (const Attribute& a : universe.schema().attributes()) {
    if (std::find(options.exclude.begin(), options.exclude.end(), a.name) ==
        options.exclude.end()) {
      attrs.push_back(a.name);
    }
  }
  std::sort(attrs.begin(), attrs.end());
  const size_t n = attrs.size();
  if (n == 0) {
    return Status::InvalidArgument("universe has no usable attributes");
  }

  std::vector<ExtendedKey> keys;
  std::vector<std::vector<size_t>> identifying;  // index sets found so far
  size_t examined = 0;

  // Breadth-first by size: a set is a *minimal* key iff it identifies and
  // no identifying proper subset exists — with BFS, equivalently no
  // previously-found identifying set is a subset.
  for (size_t k = 1; k <= options.max_size && k <= n; ++k) {
    std::vector<size_t> idx(k);
    for (size_t i = 0; i < k; ++i) idx[i] = i;
    while (true) {
      if (++examined > options.enumeration_cap) {
        return Status::FailedPrecondition(
            "key discovery exceeded the enumeration cap; lower max_size or "
            "raise the cap");
      }
      bool has_identifying_subset = false;
      for (const std::vector<size_t>& found : identifying) {
        if (std::includes(idx.begin(), idx.end(), found.begin(),
                          found.end())) {
          has_identifying_subset = true;
          break;
        }
      }
      if (!has_identifying_subset) {
        std::vector<std::string> names;
        for (size_t i : idx) names.push_back(attrs[i]);
        EID_ASSIGN_OR_RETURN(bool ident, IsIdentifying(universe, names));
        if (ident) {
          identifying.push_back(idx);
          keys.push_back(ExtendedKey(names));
        }
      }
      // Next k-combination.
      size_t i = k;
      bool done = false;
      while (i > 0) {
        --i;
        if (idx[i] != i + n - k) {
          ++idx[i];
          for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
          break;
        }
        if (i == 0) done = true;
      }
      if (done) break;
    }
  }
  return keys;
}

std::vector<RankedKey> RankKeysForPair(const std::vector<ExtendedKey>& keys,
                                       const AttributeCorrespondence& corr,
                                       const IlfdSet& ilfds) {
  std::set<std::string> derivable;
  for (const Ilfd& f : ilfds.ilfds()) {
    for (const std::string& c : f.ConsequentAttributes()) derivable.insert(c);
  }
  std::vector<RankedKey> ranked;
  for (const ExtendedKey& key : keys) {
    RankedKey entry{key, 0, 0};
    bool usable = true;
    for (const std::string& a : key.attributes()) {
      bool on_r = corr.LocalName(a, Side::kR).has_value();
      bool on_s = corr.LocalName(a, Side::kS).has_value();
      if (!on_r) {
        if (derivable.count(a) == 0) {
          usable = false;
          break;
        }
        ++entry.derived_on_r;
      }
      if (!on_s) {
        if (derivable.count(a) == 0) {
          usable = false;
          break;
        }
        ++entry.derived_on_s;
      }
    }
    if (usable) ranked.push_back(std::move(entry));
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedKey& a, const RankedKey& b) {
                     size_t da = a.derived_on_r + a.derived_on_s;
                     size_t db = b.derived_on_r + b.derived_on_s;
                     if (da != db) return da < db;
                     return a.key.size() < b.key.size();
                   });
  return ranked;
}

}  // namespace eid
