// Clang Thread Safety Analysis annotations for the eid codebase.
//
// The engine's core guarantee — `threads=1 ≡ threads=N` bit-identical
// identification — rests on locking contracts that used to live in
// comments ("guarded by mu_") and in whatever interleavings TSan
// happened to execute. These macros turn the contracts into attributes
// the compiler checks on *every* call path, on every clang build:
// a member declared EID_GUARDED_BY(mu_) cannot be read or written
// without mu_ held, a function declared EID_REQUIRES(mu_) cannot be
// called without it, and `-Wthread-safety -Wthread-safety-beta -Werror`
// (the `thread-safety` preset, a scripts/check.sh step and a gating CI
// job) makes any violation a build error.
//
// On compilers without the capability attributes (GCC) every macro
// expands to nothing, so the annotated code is plain C++ everywhere and
// machine-checked wherever clang compiles it.
//
// Use base::Mutex / base::MutexLock / base::CondVar (base/mutex.h) —
// annotated wrappers over the std primitives — rather than std::mutex
// directly: the std types carry no capability attributes, so locking
// through them is invisible to the analysis. scripts/check.sh enforces
// that no raw std::mutex member survives outside src/base/.
//
// Beyond lock-guarded state, the determinism contract relies on two
// *lock-free* disciplines that the analysis cannot express but that the
// codebase marks with the same rigor (grep-able, defined here, policy in
// DESIGN.md §4f):
//
//   EID_PER_WORKER          — state owned by exactly one ParallelFor
//                             worker (indexed by the worker id, or one
//                             instance per worker): never shared, so
//                             never locked. Examples: DerivationMemo,
//                             ClosureEvaluator, per-chunk output buffers.
//   EID_SHARED_IMMUTABLE    — state built serially *before* a
//                             ParallelFor and read-only inside it
//                             (const access from every worker).
//                             Examples: CompiledConjunction,
//                             ColumnIndexCache contents, AMQ filters.
//
// Both expand to nothing on every compiler; they are declarations of
// intent that reviews and TSan hold the code to, exactly like the
// capability annotations are on GCC.

#ifndef EID_BASE_THREAD_ANNOTATIONS_H_
#define EID_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define EID_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define EID_THREAD_ANNOTATION_(x)  // no-op on non-clang compilers
#endif

/// Declares a type to be a capability ("mutex"): lockable state the
/// analysis tracks acquisition of.
#define EID_CAPABILITY(x) EID_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define EID_SCOPED_CAPABILITY EID_THREAD_ANNOTATION_(scoped_lockable)

/// The annotated member may only be accessed while `x` is held.
#define EID_GUARDED_BY(x) EID_THREAD_ANNOTATION_(guarded_by(x))

/// The data pointed to by the annotated pointer member may only be
/// accessed while `x` is held (the pointer itself is unguarded).
#define EID_PT_GUARDED_BY(x) EID_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The annotated function may only be called while holding `...`.
#define EID_REQUIRES(...) \
  EID_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The annotated function may only be called while NOT holding `...`
/// (deadlock prevention for functions that acquire it themselves).
#define EID_EXCLUDES(...) \
  EID_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The annotated function acquires the capability and holds it on return.
#define EID_ACQUIRE(...) \
  EID_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The annotated function releases the capability.
#define EID_RELEASE(...) \
  EID_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The annotated function acquires the capability iff it returns `b`.
#define EID_TRY_ACQUIRE(b, ...) \
  EID_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

/// The annotated function returns a reference to the named capability.
#define EID_RETURN_CAPABILITY(x) EID_THREAD_ANNOTATION_(lock_returned(x))

/// Asserts (at runtime, from the analysis' point of view) that the
/// calling thread already holds the capability.
#define EID_ASSERT_CAPABILITY(x) \
  EID_THREAD_ANNOTATION_(assert_capability(x))

/// Opts one function out of the analysis. Reserve for wrappers whose
/// body manipulates locks in ways the analysis cannot follow (e.g. a
/// condition-variable wait that releases and re-acquires internally) —
/// each use must say why in a comment.
#define EID_NO_THREAD_SAFETY_ANALYSIS \
  EID_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Lock-free discipline markers (see file comment): not enforced by the
/// compiler, enforced by review + TSan + the determinism suites.
#define EID_PER_WORKER        // one owner worker; never shared, never locked
#define EID_SHARED_IMMUTABLE  // built serially, read-only during ParallelFor

#endif  // EID_BASE_THREAD_ANNOTATIONS_H_
