// Capability-annotated synchronization primitives.
//
// Thin wrappers over std::mutex / std::condition_variable_any that carry
// the Clang Thread Safety Analysis attributes (base/thread_annotations.h)
// the std types lack. All concurrency-bearing code in the engine locks
// through these — a raw std::mutex member is invisible to the analysis,
// so scripts/check.sh rejects any outside src/base/.
//
// The wrappers add no state and no indirection: every method is an
// inline forward to the std primitive, so codegen is identical to using
// std::mutex directly. CondVar uses std::condition_variable_any to wait
// on the annotated Mutex; it is only ever signalled at job boundaries in
// this codebase, where the (already negligible) difference to
// std::condition_variable does not matter.

#ifndef EID_BASE_MUTEX_H_
#define EID_BASE_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.h"

namespace eid {
namespace base {

class CondVar;

/// An annotated exclusive mutex. Members it guards declare
/// EID_GUARDED_BY(that_mutex); functions that need it held declare
/// EID_REQUIRES, functions that must not hold it EID_EXCLUDES.
class EID_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() EID_ACQUIRE() { mu_.lock(); }
  void Unlock() EID_RELEASE() { mu_.unlock(); }
  bool TryLock() EID_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex; the only way the engine holds one. Scoped
/// acquisition means the analysis proves release on every path,
/// exceptions included.
class EID_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) EID_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() EID_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to an annotated Mutex. Wait requires the
/// mutex held at the call and returns with it held (the internal
/// release/re-acquire is invisible to — and sound for — the static
/// analysis, which checks lock state at function granularity). There is
/// deliberately no predicate overload: a lambda predicate is a separate
/// function to the analysis, so guarded reads inside it would need
/// opt-outs. Callers write the standard loop instead:
///
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(&mu_);   // ready_ is EID_GUARDED_BY(mu_)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, blocks until notified, re-acquires.
  /// Spurious wakeups possible — always wait in a condition loop.
  void Wait(Mutex* mu) EID_REQUIRES(mu) { cv_.wait(mu->mu_); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace base
}  // namespace eid

#endif  // EID_BASE_MUTEX_H_
