// Umbrella header for the eid library.
//
// eid is a C++20 implementation of the entity-identification framework of
// Lim, Srivastava, Prabhakar & Richardson, "Entity Identification in
// Database Integration" (ICDE 1993): sound instance-level matching of
// tuples from autonomous databases via extended keys and instance-level
// functional dependencies (ILFDs).
//
// Typical use:
//
//   eid::IdentifierConfig config;
//   config.correspondence = eid::AttributeCorrespondence::Identity(r, s);
//   config.extended_key = eid::ExtendedKey({"name", "cuisine"});
//   config.ilfds.AddText("speciality=Mughalai -> cuisine=Indian");
//   eid::EntityIdentifier identifier(config);
//   auto result = identifier.Identify(r, s);
//   // result->matching, result->negative, result->partition, ...

#ifndef EID_EID_H_
#define EID_EID_H_

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "compile/derivation_program.h"
#include "compile/interner.h"
#include "compile/pair_program.h"
#include "discovery/ilfd_miner.h"
#include "discovery/key_discovery.h"
#include "eid/algebra_pipeline.h"
#include "eid/correspondence.h"
#include "eid/extended_key.h"
#include "eid/explain.h"
#include "eid/extension.h"
#include "eid/identifier.h"
#include "eid/incremental.h"
#include "eid/integrate.h"
#include "eid/match_tables.h"
#include "eid/matcher.h"
#include "eid/monotonic.h"
#include "eid/multiway.h"
#include "eid/negative.h"
#include "eid/session.h"
#include "eid/virtual_view.h"
#include "ilfd/derivation.h"
#include "ilfd/fd.h"
#include "ilfd/ilfd.h"
#include "ilfd/ilfd_set.h"
#include "ilfd/ilfd_table.h"
#include "ilfd/violation.h"
#include "logic/armstrong.h"
#include "logic/implication.h"
#include "logic/kb.h"
#include "logic/model.h"
#include "logic/proposition.h"
#include "relational/algebra.h"
#include "relational/catalog.h"
#include "relational/csv.h"
#include "relational/printer.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/status.h"
#include "relational/tuple.h"
#include "relational/value.h"
#include "rules/distinctness_rule.h"
#include "rules/identity_rule.h"
#include "rules/predicate.h"

#endif  // EID_EID_H_
