// The paper's worked examples as ready-made fixtures.
//
// Every table printed in the paper is constructible from here:
//   Table 1  — the motivating restaurant relations (Example 1);
//   Fig. 2   — the identical-tuples / distinct-entities scenario;
//   Table 2  — Example 2's R and S (TwinCities / Mughalai);
//   Table 5  — Example 3's R and S, with ILFDs I1–I8 (Table 8 is the
//              ILFD-table form of I1–I4);
//   Fig. 1   — a small entity universe with partially overlapping
//              relations R and S (a2≡b3, a3≡b4).

#ifndef EID_WORKLOAD_FIXTURES_H_
#define EID_WORKLOAD_FIXTURES_H_

#include "eid/correspondence.h"
#include "eid/extended_key.h"
#include "ilfd/ilfd_set.h"
#include "relational/relation.h"

namespace eid {
namespace fixtures {

/// Table 1: R(name, street, cuisine), key (name, street).
Relation Table1R();
/// Table 1: S(name, city, manager), key (name, city).
Relation Table1S();
/// The tuple Example 1 inserts to create ambiguity:
/// (VillageWok, Penn.Ave., Chinese).
Row Table1AmbiguousInsert();
/// Example 1's resolving knowledge:
///   street=Wash.Ave. -> city=Mpls   ("Wash.Ave. is only in city Mpls")
///   manager=Hwang -> street=Wash.Ave.
///     ("the restaurant owned by Hwang is only on Wash.Ave.")
IlfdSet Example1Ilfds();
/// Example 1's extended key {name, street, city}: "restaurant entities in
/// the integrated world have unique combinations of name, street, and city".
ExtendedKey Example1ExtendedKey();

/// Fig. 2: R(name, cuisine) in DB1 and S(name, cuisine) in DB2, both
/// containing (VillageWok, Chinese) — but modeling different entities.
Relation Figure2R();
Relation Figure2S();
/// The same relations with the source-database domain attribute attached.
Relation Figure2RWithDomain();
Relation Figure2SWithDomain();
/// Fig. 2's ground-truth universe: two distinct VillageWok restaurants.
Relation Figure2Universe();

/// Table 2 (Example 2): R(name, cuisine, street), key (name, cuisine).
Relation Example2R();
/// Table 2 (Example 2): S(name, speciality, city), key (name, speciality).
Relation Example2S();
/// Example 2's single ILFD: speciality=Mughalai -> cuisine=Indian.
IlfdSet Example2Ilfds();
/// Example 2's extended key {name, cuisine}.
ExtendedKey Example2ExtendedKey();

/// Table 5 (Example 3): R(name, cuisine, street), key (name, cuisine).
Relation Example3R();
/// Table 5 (Example 3): S(name, speciality, county), key (name, speciality).
Relation Example3S();
/// ILFDs I1–I8 of Example 3, in the paper's order.
IlfdSet Example3Ilfds();
/// The derived ILFD I9: name=It'sGreek & street=FrontAve. -> speciality=Gyros.
Ilfd Example3DerivedI9();
/// Example 3's extended key {name, cuisine, speciality}.
ExtendedKey Example3ExtendedKey();

/// Identity correspondence for any of the above pairs (world attribute
/// names equal local names on both sides).
AttributeCorrespondence IdentityCorrespondence(const Relation& r,
                                               const Relation& s);

/// Fig. 1: a universe of five entities e1..e5; R models {e1,e2,e3} as
/// a1,a2,a3 and S models {e2,e3,e5} as b3,b4,b2 (e4 is in neither).
/// Ground-truth matches: a2≡b3 (=e2), a3≡b4 (=e3).
struct Figure1World {
  Relation universe;          // world naming: name, street, cuisine
  Relation r;                 // a-tuples
  Relation s;                 // b-tuples
  std::vector<std::pair<size_t, size_t>> truth;  // (r row, s row)
};
Figure1World Figure1();

}  // namespace fixtures
}  // namespace eid

#endif  // EID_WORKLOAD_FIXTURES_H_
