#include "workload/generator.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace eid {
namespace {

std::string NameToken(size_t i) { return "Name" + std::to_string(i); }
std::string StreetToken(size_t i) { return "Street" + std::to_string(i); }
std::string CityToken(size_t i) { return "City" + std::to_string(i); }
std::string SpecialityToken(size_t i) { return "Spec" + std::to_string(i); }
std::string CuisineToken(size_t i) { return "Cuisine" + std::to_string(i); }

struct Entity {
  std::string name, street, city, speciality, cuisine;
};

}  // namespace

Result<GeneratedWorld> GenerateWorld(const GeneratorConfig& config) {
  const size_t total = config.overlap_entities + config.r_only_entities +
                       config.s_only_entities;
  if (total == 0) {
    return Status::InvalidArgument("world must contain at least one entity");
  }
  if (config.name_pool == 0 || config.street_pool == 0 ||
      config.cities == 0 || config.speciality_pool == 0 ||
      config.cuisines == 0) {
    return Status::InvalidArgument("pools must be non-empty");
  }
  if (total > config.name_pool * config.speciality_pool) {
    return Status::InvalidArgument(
        "too dense: (name, speciality) cannot be unique for " +
        std::to_string(total) + " entities");
  }
  if (total > config.name_pool * config.street_pool) {
    return Status::InvalidArgument(
        "too dense: (name, street) cannot be unique");
  }

  Rng rng(config.seed);

  // Fixed taxonomies: street → city, speciality → cuisine.
  std::vector<size_t> city_of(config.street_pool);
  for (size_t t = 0; t < config.street_pool; ++t) {
    city_of[t] = rng.Below(config.cities);
  }
  std::vector<size_t> cuisine_of(config.speciality_pool);
  for (size_t sp = 0; sp < config.speciality_pool; ++sp) {
    cuisine_of[sp] = rng.Below(config.cuisines);
  }
  if (config.resample_seed != 0) rng = Rng(config.resample_seed);

  // Sample entities with unique (name, speciality), (name, street) and
  // (name, city) combinations — the three key constraints.
  std::vector<Entity> entities;
  entities.reserve(total);
  std::unordered_set<std::string> seen_ns, seen_nt, seen_nc;
  size_t attempts = 0;
  const size_t max_attempts = total * 1000 + 1000;
  while (entities.size() < total) {
    if (++attempts > max_attempts) {
      return Status::InvalidArgument(
          "could not sample a world satisfying the key constraints; "
          "enlarge the pools");
    }
    size_t n = rng.Below(config.name_pool);
    size_t t = rng.Below(config.street_pool);
    size_t sp = rng.Below(config.speciality_pool);
    size_t c = city_of[t];
    std::string ns = std::to_string(n) + "/" + std::to_string(sp);
    std::string nt = std::to_string(n) + "/" + std::to_string(t);
    std::string nc = std::to_string(n) + "/" + std::to_string(c);
    if (seen_ns.count(ns) || seen_nt.count(nt) || seen_nc.count(nc)) {
      continue;
    }
    seen_ns.insert(ns);
    seen_nt.insert(nt);
    seen_nc.insert(nc);
    entities.push_back(Entity{NameToken(n), StreetToken(t), CityToken(c),
                              SpecialityToken(sp),
                              CuisineToken(cuisine_of[sp])});
  }

  GeneratedWorld world;

  // Universe relation.
  world.universe = Relation(
      "E", Schema::OfStrings({"name", "street", "city", "speciality",
                              "cuisine"}));
  EID_RETURN_IF_ERROR(world.universe.DeclareKey({"name", "speciality"}));
  for (const Entity& e : entities) {
    EID_RETURN_IF_ERROR(world.universe.Insert(
        Row{Value::String(e.name), Value::String(e.street),
            Value::String(e.city), Value::String(e.speciality),
            Value::String(e.cuisine)}));
  }

  // R and S projections. Layout: [0, overlap) in both; then R-only; S-only.
  world.r = Relation("R", Schema::OfStrings({"name", "street", "cuisine"}));
  EID_RETURN_IF_ERROR(world.r.DeclareKey({"name", "street"}));
  world.s = Relation("S", Schema::OfStrings({"name", "city", "speciality"}));
  EID_RETURN_IF_ERROR(world.s.DeclareKey({"name", "city"}));

  size_t r_row = 0, s_row = 0;
  for (size_t i = 0; i < entities.size(); ++i) {
    const Entity& e = entities[i];
    bool in_r = i < config.overlap_entities ||
                (i >= config.overlap_entities &&
                 i < config.overlap_entities + config.r_only_entities);
    bool in_s = i < config.overlap_entities ||
                i >= config.overlap_entities + config.r_only_entities;
    size_t this_r = 0, this_s = 0;
    if (in_r) {
      this_r = r_row++;
      EID_RETURN_IF_ERROR(world.r.Insert(Row{Value::String(e.name),
                                             Value::String(e.street),
                                             Value::String(e.cuisine)}));
    }
    if (in_s) {
      this_s = s_row++;
      EID_RETURN_IF_ERROR(world.s.Insert(Row{Value::String(e.name),
                                             Value::String(e.city),
                                             Value::String(e.speciality)}));
    }
    if (in_r && in_s) world.truth.push_back(TuplePair{this_r, this_s});
  }

  // ILFDs: taxonomy families + per-entity coverage.
  for (size_t sp = 0; sp < config.speciality_pool; ++sp) {
    world.ilfds.Add(Ilfd::Implies(
        {Atom{"speciality", Value::String(SpecialityToken(sp))}},
        Atom{"cuisine", Value::String(CuisineToken(cuisine_of[sp]))}));
  }
  const size_t street_rules =
      std::min(config.street_pool, config.max_street_rules);
  for (size_t t = 0; t < street_rules; ++t) {
    world.ilfds.Add(
        Ilfd::Implies({Atom{"street", Value::String(StreetToken(t))}},
                      Atom{"city", Value::String(CityToken(city_of[t]))}));
  }
  world.covered.assign(entities.size(), false);
  for (size_t i = 0; i < entities.size(); ++i) {
    if (!rng.Chance(config.ilfd_coverage)) continue;
    world.covered[i] = true;
    const Entity& e = entities[i];
    world.ilfds.Add(
        Ilfd::Implies({Atom{"name", Value::String(e.name)},
                       Atom{"street", Value::String(e.street)}},
                      Atom{"speciality", Value::String(e.speciality)}));
  }

  world.correspondence =
      AttributeCorrespondence::Identity(world.r, world.s);
  // `speciality` and `city` live only in S, `street`/`cuisine` only in R;
  // Identity() already records each with the proper sides.
  world.extended_key = ExtendedKey({"name", "speciality"});
  return world;
}

}  // namespace eid
