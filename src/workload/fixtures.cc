#include "workload/fixtures.h"

namespace eid {
namespace fixtures {
namespace {

/// Builds an all-string relation with one declared candidate key.
Relation Build(const std::string& name,
               const std::vector<std::string>& attributes,
               const std::vector<std::string>& key,
               const std::vector<std::vector<std::string>>& rows) {
  Relation rel(name, Schema::OfStrings(attributes));
  if (!key.empty()) {
    Status st = rel.DeclareKey(key);
    EID_CHECK(st.ok());
  }
  for (const std::vector<std::string>& row : rows) {
    Status st = rel.InsertText(row);
    EID_CHECK(st.ok());
  }
  return rel;
}

IlfdSet ParseSet(const std::string& text) {
  Result<std::vector<Ilfd>> ilfds = ParseIlfdList(text);
  EID_CHECK(ilfds.ok());
  return IlfdSet(std::move(ilfds).value());
}

}  // namespace

Relation Table1R() {
  return Build("R", {"name", "street", "cuisine"}, {"name", "street"},
               {{"VillageWok", "Wash.Ave.", "Chinese"},
                {"Ching", "Co.B Rd.", "Chinese"},
                {"OldCountry", "Co.B2 Rd.", "American"}});
}

Relation Table1S() {
  return Build("S", {"name", "city", "manager"}, {"name", "city"},
               {{"VillageWok", "Mpls", "Hwang"},
                {"OldCountry", "Roseville", "Libby"},
                {"ExpressCafe", "Burnsville", "Tom"}});
}

Row Table1AmbiguousInsert() {
  return Row{Value::Str("VillageWok"), Value::Str("Penn.Ave."),
             Value::Str("Chinese")};
}

IlfdSet Example1Ilfds() {
  return ParseSet(
      "street=Wash.Ave. -> city=Mpls\n"
      "manager=Hwang -> street=Wash.Ave.\n");
}

ExtendedKey Example1ExtendedKey() {
  return ExtendedKey({"name", "street", "city"});
}

Relation Figure2R() {
  return Build("R", {"name", "cuisine"}, {"name"},
               {{"VillageWok", "Chinese"}});
}

Relation Figure2S() {
  return Build("S", {"name", "cuisine"}, {"name"},
               {{"VillageWok", "Chinese"}});
}

Relation Figure2RWithDomain() {
  return Build("R", {"name", "cuisine", "domain"}, {"name"},
               {{"VillageWok", "Chinese", "DB1"}});
}

Relation Figure2SWithDomain() {
  return Build("S", {"name", "cuisine", "domain"}, {"name"},
               {{"VillageWok", "Chinese", "DB2"}});
}

Relation Figure2Universe() {
  return Build("Restaurant", {"name", "street", "cuisine"},
               {"name", "street"},
               {{"VillageWok", "Wash.Ave.", "Chinese"},
                {"VillageWok", "Co.B2.Rd.", "Chinese"}});
}

Relation Example2R() {
  return Build("R", {"name", "cuisine", "street"}, {"name", "cuisine"},
               {{"TwinCities", "Chinese", "Wash.Ave."},
                {"TwinCities", "Indian", "Univ.Ave."}});
}

Relation Example2S() {
  return Build("S", {"name", "speciality", "city"}, {"name"},
               {{"TwinCities", "Mughalai", "St.Paul"}});
}

IlfdSet Example2Ilfds() {
  return ParseSet("speciality=Mughalai -> cuisine=Indian\n");
}

ExtendedKey Example2ExtendedKey() { return ExtendedKey({"name", "cuisine"}); }

Relation Example3R() {
  return Build("R", {"name", "cuisine", "street"}, {"name", "cuisine"},
               {{"TwinCities", "Chinese", "Co.B2"},
                {"TwinCities", "Indian", "Co.B3"},
                {"It'sGreek", "Greek", "FrontAve."},
                {"Anjuman", "Indian", "LeSalleAve."},
                {"VillageWok", "Chinese", "Wash.Ave."}});
}

Relation Example3S() {
  return Build("S", {"name", "speciality", "county"}, {"name", "speciality"},
               {{"TwinCities", "Hunan", "Roseville"},
                {"TwinCities", "Sichuan", "Hennepin"},
                {"It'sGreek", "Gyros", "Ramsey"},
                {"Anjuman", "Mughalai", "Mpls."}});
}

IlfdSet Example3Ilfds() {
  return ParseSet(
      "speciality=Hunan -> cuisine=Chinese\n"          // I1
      "speciality=Sichuan -> cuisine=Chinese\n"        // I2
      "speciality=Gyros -> cuisine=Greek\n"            // I3
      "speciality=Mughalai -> cuisine=Indian\n"        // I4
      "name=TwinCities & street=Co.B2 -> speciality=Hunan\n"        // I5
      "name=Anjuman & street=LeSalleAve. -> speciality=Mughalai\n"  // I6
      "street=FrontAve. -> county=Ramsey\n"                         // I7
      "name=It'sGreek & county=Ramsey -> speciality=Gyros\n");      // I8
}

Ilfd Example3DerivedI9() {
  Result<Ilfd> ilfd =
      ParseIlfd("name=It'sGreek & street=FrontAve. -> speciality=Gyros");
  EID_CHECK(ilfd.ok());
  return std::move(ilfd).value();
}

ExtendedKey Example3ExtendedKey() {
  return ExtendedKey({"name", "cuisine", "speciality"});
}

AttributeCorrespondence IdentityCorrespondence(const Relation& r,
                                               const Relation& s) {
  return AttributeCorrespondence::Identity(r, s);
}

Figure1World Figure1() {
  Figure1World world;
  world.universe =
      Build("E", {"name", "street", "cuisine"}, {"name", "street"},
            {{"Curryosity", "First Ave.", "Indian"},      // e1
             {"PastaFazool", "Second Ave.", "Italian"},   // e2
             {"DimSummit", "Third Ave.", "Chinese"},      // e3
             {"TacoTempo", "Fourth Ave.", "Mexican"},     // e4 (unmodeled)
             {"PhoNominal", "Fifth Ave.", "Vietnamese"}});// e5
  world.r = Build("R", {"name", "street", "cuisine"}, {"name", "street"},
                  {{"Curryosity", "First Ave.", "Indian"},     // a1 = e1
                   {"PastaFazool", "Second Ave.", "Italian"},  // a2 = e2
                   {"DimSummit", "Third Ave.", "Chinese"}});   // a3 = e3
  world.s = Build("S", {"name", "street", "cuisine"}, {"name", "street"},
                  {{"PhoNominal", "Fifth Ave.", "Vietnamese"},  // b2 = e5
                   {"PastaFazool", "Second Ave.", "Italian"},   // b3 = e2
                   {"DimSummit", "Third Ave.", "Chinese"}});    // b4 = e3
  world.truth = {{1, 1}, {2, 2}};  // a2≡b3, a3≡b4
  return world;
}

}  // namespace fixtures
}  // namespace eid
