// Synthetic integrated-world generator.
//
// The paper's evaluation is a hand-built example; scaling and quality
// studies need bigger worlds with the same structure. The generator builds
// a restaurant-style universe with exactly the knowledge shapes of
// Example 3:
//
//   * entities carry (name, street, city, speciality, cuisine);
//   * a taxonomy ILFD family  speciality=s → cuisine=taxonomy(s)
//     (Table 8's IM(speciality; cuisine));
//   * a geography ILFD family street=t → city=geo(t);
//   * per-entity knowledge   name=n & street=t → speciality=sp for a
//     configurable *coverage* fraction of entities (the I5/I6 shape) —
//     coverage drives the undetermined rate, the knob behind Fig. 3;
//   * R models (name, street, cuisine) with key (name, street);
//     S models (name, city, speciality) with key (name, city);
//     the extended key is {name, speciality} (unique by construction).
//
// R and S sample overlapping entity subsets; the overlap is the ground
// truth. Name-pool size controls how ambiguous pure attribute matching is
// (small pools create many same-name distinct entities → homonyms), which
// is what separates the sound technique from the §2.2 baselines.

#ifndef EID_WORKLOAD_GENERATOR_H_
#define EID_WORKLOAD_GENERATOR_H_

#include "eid/correspondence.h"
#include "eid/extended_key.h"
#include "eid/match_tables.h"
#include <cstdint>

#include "ilfd/ilfd_set.h"
#include "workload/rng.h"

namespace eid {

/// Knobs of the synthetic world.
struct GeneratorConfig {
  uint64_t seed = 42;
  /// When non-zero, entity sampling reseeds with this value after the
  /// taxonomies (street→city, speciality→cuisine) are drawn from `seed` —
  /// two configs with equal `seed` and different `resample_seed` share a
  /// world's *laws* but sample different entities (e.g. a mining witness).
  uint64_t resample_seed = 0;
  /// Entities modeled by both R and S (the ground-truth matches).
  size_t overlap_entities = 64;
  /// Entities modeled only by R / only by S.
  size_t r_only_entities = 32;
  size_t s_only_entities = 32;
  /// Name pool size; smaller → more distinct entities sharing a name.
  size_t name_pool = 64;
  /// Streets (each street belongs to one of `cities` cities).
  size_t street_pool = 128;
  size_t cities = 8;
  /// Specialities (each maps to one of `cuisines` cuisines).
  size_t speciality_pool = 32;
  size_t cuisines = 6;
  /// Fraction of entities with the per-entity (name,street)→speciality
  /// ILFD. 1.0 → R can always derive the extended key; lower values leave
  /// undetermined pairs.
  double ilfd_coverage = 1.0;
  /// Cap on the street→city taxonomy rules emitted into `ilfds`. The
  /// street pool scales with the world so keys stay unique, but domain
  /// knowledge does not grow with the data — large-n workloads (the
  /// snapshot cold-start study) cap the rule program at a fixed budget.
  /// Streets beyond the cap simply have no derivable city. SIZE_MAX (the
  /// default) emits one rule per street as before.
  size_t max_street_rules = SIZE_MAX;
};

/// A generated world plus everything a matcher needs.
struct GeneratedWorld {
  Relation universe;  // all entities, world naming (5 attributes)
  Relation r;         // R(name, street, cuisine), key (name, street)
  Relation s;         // S(name, city, speciality), key (name, city)
  /// Ground truth: (r row, s row) pairs modeling the same entity.
  std::vector<TuplePair> truth;
  IlfdSet ilfds;
  AttributeCorrespondence correspondence;
  ExtendedKey extended_key;  // {name, speciality}
  /// Entities whose per-entity ILFD was generated (by universe row).
  std::vector<bool> covered;
};

/// Generates a world. Entity sampling retries until the extended key and
/// both relation keys are unique; configurations too dense to satisfy that
/// (e.g. more entities than name_pool × speciality_pool) are rejected.
Result<GeneratedWorld> GenerateWorld(const GeneratorConfig& config);

}  // namespace eid

#endif  // EID_WORKLOAD_GENERATOR_H_
