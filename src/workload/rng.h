// Deterministic pseudo-random number generation for workloads.
//
// splitmix64: tiny, fast, well-distributed, and — unlike std::mt19937 with
// std::uniform_int_distribution — bit-for-bit reproducible across standard
// libraries, which benchmark workloads require.

#ifndef EID_WORKLOAD_RNG_H_
#define EID_WORKLOAD_RNG_H_

#include <cstdint>

#include "relational/status.h"

namespace eid {

/// splitmix64 generator.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). Precondition: bound > 0.
  uint64_t Below(uint64_t bound) {
    EID_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0ull - bound) % bound;
    for (;;) {
      uint64_t v = Next();
      if (v >= threshold) return v % bound;
    }
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli(p).
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace eid

#endif  // EID_WORKLOAD_RNG_H_
