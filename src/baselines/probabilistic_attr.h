// Baseline 4 (§2.2): probabilistic attribute equivalence
// (Chatterjee & Segev 1991).
//
// For each pair of records, a *comparison value* is computed from all
// common attributes: a weighted sum of per-attribute agreement indicators
// (a simplified Fellegi–Sunter-style model). Pairs above a high threshold
// are declared matching, below a low threshold non-matching, in between
// undetermined. §2.1 demonstrates that agreeing on all common attributes
// does not guarantee entity equality — this baseline is the one Fig. 2
// shows producing unsound matches.

#ifndef EID_BASELINES_PROBABILISTIC_ATTR_H_
#define EID_BASELINES_PROBABILISTIC_ATTR_H_

#include <map>

#include "baselines/baseline.h"
#include "eid/correspondence.h"

namespace eid {

/// Options for ProbabilisticAttrMatcher.
struct ProbabilisticAttrOptions {
  /// Comparison value at or above which a pair matches.
  double match_threshold = 1.0;
  /// Below this the pair is a declared non-match.
  double non_match_threshold = 0.5;
  /// Optional per-world-attribute weights; unlisted attributes weigh 1.
  std::map<std::string, double> weights;
  /// Enforce one-to-one matching greedily by decreasing comparison value.
  /// When false, every pair above threshold matches (the raw model — may
  /// violate the uniqueness constraint, which Evaluate() then surfaces).
  bool one_to_one = true;
};

/// Comparison-value matching over all common attributes.
class ProbabilisticAttrMatcher : public BaselineMatcher {
 public:
  ProbabilisticAttrMatcher(AttributeCorrespondence corr,
                           ProbabilisticAttrOptions options = {})
      : corr_(std::move(corr)), options_(options) {}

  std::string Name() const override { return "probabilistic-attribute"; }

  Result<BaselineResult> Match(const Relation& r,
                               const Relation& s) const override;

  /// The normalised comparison value of one pair: weighted fraction of
  /// common attributes whose values agree (NULL on either side contributes
  /// disagreement weight 0 and agreement weight 0 — it is simply skipped,
  /// reducing the effective weight mass).
  Result<double> ComparisonValue(const TupleView& r_tuple,
                                 const TupleView& s_tuple) const;

 private:
  AttributeCorrespondence corr_;
  ProbabilisticAttrOptions options_;
};

}  // namespace eid

#endif  // EID_BASELINES_PROBABILISTIC_ATTR_H_
