// Baseline 3 (§2.2): probabilistic key equivalence (Pu 1991).
//
// Instead of insisting on full key equivalence, match on a *portion* of
// the key values: key strings are split into subfields (whitespace and
// punctuation), and two keys are considered identical when the fraction of
// agreeing subfields reaches a threshold (the name-matching problem). "The
// probabilistic nature of matching may also admit erroneous matching" —
// and it still requires a common key between the relations.

#ifndef EID_BASELINES_PROBABILISTIC_KEY_H_
#define EID_BASELINES_PROBABILISTIC_KEY_H_

#include "baselines/baseline.h"
#include "eid/correspondence.h"

namespace eid {

/// Options for ProbabilisticKeyMatcher.
struct ProbabilisticKeyOptions {
  /// Minimum Jaccard similarity of the key subfield sets to declare a
  /// match (1.0 degenerates to exact key equivalence).
  double match_threshold = 0.75;
  /// Below this similarity the pair is declared a non-match; between the
  /// thresholds it stays undetermined.
  double non_match_threshold = 0.25;
  /// Case-insensitive subfield comparison.
  bool case_insensitive = true;
};

/// Splits a string into subfields: maximal runs of alphanumerics.
std::vector<std::string> SplitSubfields(const std::string& text,
                                        bool case_insensitive);

/// Jaccard similarity of two subfield multisets.
double SubfieldSimilarity(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// Approximate matching over a common key's subfields.
class ProbabilisticKeyMatcher : public BaselineMatcher {
 public:
  ProbabilisticKeyMatcher(AttributeCorrespondence corr,
                          ProbabilisticKeyOptions options = {})
      : corr_(std::move(corr)), options_(options) {}

  std::string Name() const override { return "probabilistic-key"; }

  /// Like key equivalence, fails when no common candidate key exists.
  /// Otherwise compares every pair's key subfields. Greedy one-to-one
  /// assignment: each tuple matches its best counterpart above threshold,
  /// ties broken by lowest index.
  Result<BaselineResult> Match(const Relation& r,
                               const Relation& s) const override;

 private:
  AttributeCorrespondence corr_;
  ProbabilisticKeyOptions options_;
};

}  // namespace eid

#endif  // EID_BASELINES_PROBABILISTIC_KEY_H_
