#include "baselines/key_equivalence.h"

#include <algorithm>
#include <unordered_map>

namespace eid {
namespace {

/// World names of a relation's candidate key, or nullopt when any key
/// attribute has no world mapping.
std::optional<std::vector<std::string>> WorldKey(
    const Relation& rel, const KeyDef& key, const AttributeCorrespondence& corr,
    Side side) {
  std::vector<std::string> world;
  for (size_t i : key.attribute_indices) {
    const std::string& local = rel.schema().attribute(i).name;
    bool found = false;
    for (const AttributeMapping& m : corr.mappings()) {
      const std::optional<std::string>& name =
          (side == Side::kR) ? m.in_r : m.in_s;
      if (name.has_value() && *name == local) {
        world.push_back(m.world);
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  std::sort(world.begin(), world.end());
  return world;
}

}  // namespace

Result<BaselineResult> KeyEquivalenceMatcher::Match(const Relation& r,
                                                    const Relation& s) const {
  EID_RETURN_IF_ERROR(corr_.ValidateAgainst(r, s));
  // Find a candidate key of R that corresponds to a candidate key of S.
  std::vector<KeyDef> r_keys = r.keys();
  std::vector<KeyDef> s_keys = s.keys();
  if (r_keys.empty()) {
    KeyDef all;
    for (size_t i = 0; i < r.schema().size(); ++i) {
      all.attribute_indices.push_back(i);
    }
    r_keys.push_back(all);
  }
  if (s_keys.empty()) {
    KeyDef all;
    for (size_t i = 0; i < s.schema().size(); ++i) {
      all.attribute_indices.push_back(i);
    }
    s_keys.push_back(all);
  }

  std::optional<std::pair<KeyDef, KeyDef>> common;
  for (const KeyDef& rk : r_keys) {
    std::optional<std::vector<std::string>> rw =
        WorldKey(r, rk, corr_, Side::kR);
    if (!rw.has_value()) continue;
    for (const KeyDef& sk : s_keys) {
      std::optional<std::vector<std::string>> sw =
          WorldKey(s, sk, corr_, Side::kS);
      if (sw.has_value() && *sw == *rw) {
        common = {rk, sk};
        break;
      }
    }
    if (common.has_value()) break;
  }

  BaselineResult out;
  if (!common.has_value()) {
    out.applicability = Status::FailedPrecondition(
        "key equivalence is not applicable: relations '" + r.name() +
        "' and '" + s.name() + "' share no common candidate key");
    return out;
  }

  // Align S's key attribute order to R's via world names.
  const KeyDef& rk = common->first;
  const KeyDef& sk = common->second;
  std::vector<size_t> s_aligned;
  for (size_t ri : rk.attribute_indices) {
    const std::string& r_local = r.schema().attribute(ri).name;
    std::string world;
    for (const AttributeMapping& m : corr_.mappings()) {
      if (m.in_r.has_value() && *m.in_r == r_local) {
        world = m.world;
        break;
      }
    }
    for (size_t si : sk.attribute_indices) {
      const std::string& s_local = s.schema().attribute(si).name;
      const AttributeMapping* m = nullptr;
      for (const AttributeMapping& cand : corr_.mappings()) {
        if (cand.in_s.has_value() && *cand.in_s == s_local) {
          m = &cand;
          break;
        }
      }
      if (m != nullptr && m->world == world) {
        s_aligned.push_back(si);
        break;
      }
    }
  }
  if (s_aligned.size() != rk.attribute_indices.size()) {
    return Status::Internal("key alignment failed");
  }

  auto fingerprint = [](const Row& row, const std::vector<size_t>& idx,
                        bool* has_null) {
    std::string fp;
    *has_null = false;
    for (size_t i : idx) {
      if (row[i].is_null()) {
        *has_null = true;
        return fp;
      }
      std::string v = row[i].ToString();
      fp += std::to_string(v.size()) + ":" + v + "|" +
            static_cast<char>('0' + static_cast<int>(row[i].type()));
    }
    return fp;
  };

  std::unordered_map<std::string, std::vector<size_t>> build;
  for (size_t j = 0; j < s.size(); ++j) {
    bool has_null = false;
    std::string fp = fingerprint(s.row(j), s_aligned, &has_null);
    if (!has_null) build[fp].push_back(j);
  }
  for (size_t i = 0; i < r.size(); ++i) {
    bool has_null = false;
    std::string fp = fingerprint(r.row(i), rk.attribute_indices, &has_null);
    if (has_null) continue;
    auto it = build.find(fp);
    if (it == build.end()) continue;
    for (size_t j : it->second) {
      // A candidate key is unique within each relation, so at most one j.
      Status st = out.matching.Add(TuplePair{i, j});
      if (!st.ok()) out.applicability = st;  // homonym blow-up; keep going
    }
  }
  if (options_.declare_non_matches) {
    for (size_t i = 0; i < r.size(); ++i) {
      for (size_t j = 0; j < s.size(); ++j) {
        TuplePair p{i, j};
        if (!out.matching.Contains(p)) {
          EID_RETURN_IF_ERROR(out.negative.Add(p));
        }
      }
    }
  }
  return out;
}

}  // namespace eid
