// Baseline 2 (§2.2): user-specified equivalence (Pegasus-style).
//
// The user supplies a table mapping local object identifiers to global
// identifiers; tuples sharing a global id match. General — it handles
// synonym and homonym problems — but "the matching table can be very
// large", so the cost is the user's effort: the technique decides nothing
// on its own. Entries are given as (R-key values, S-key values) pairs.

#ifndef EID_BASELINES_USER_SPECIFIED_H_
#define EID_BASELINES_USER_SPECIFIED_H_

#include "baselines/baseline.h"

namespace eid {

/// One user assertion: the R tuple with these key values equals the S
/// tuple with those key values.
struct UserEquivalence {
  Row r_key_values;
  Row s_key_values;
};

/// Matches exactly the user-asserted pairs.
class UserSpecifiedMatcher : public BaselineMatcher {
 public:
  explicit UserSpecifiedMatcher(std::vector<UserEquivalence> assertions)
      : assertions_(std::move(assertions)) {}

  std::string Name() const override { return "user-specified"; }

  /// Resolves each assertion against the relations' primary keys. An
  /// assertion naming a non-existent tuple is an error (dangling mapping).
  Result<BaselineResult> Match(const Relation& r,
                               const Relation& s) const override;

 private:
  std::vector<UserEquivalence> assertions_;
};

}  // namespace eid

#endif  // EID_BASELINES_USER_SPECIFIED_H_
