#include "baselines/probabilistic_attr.h"

#include <algorithm>

namespace eid {

Result<double> ProbabilisticAttrMatcher::ComparisonValue(
    const TupleView& r_tuple, const TupleView& s_tuple) const {
  double agree = 0.0, mass = 0.0;
  for (const std::string& world : corr_.CommonWorldAttributes()) {
    std::optional<std::string> rn = corr_.LocalName(world, Side::kR);
    std::optional<std::string> sn = corr_.LocalName(world, Side::kS);
    EID_CHECK(rn.has_value() && sn.has_value());
    Value rv = r_tuple.GetOrNull(*rn);
    Value sv = s_tuple.GetOrNull(*sn);
    if (rv.is_null() || sv.is_null()) continue;
    double w = 1.0;
    auto it = options_.weights.find(world);
    if (it != options_.weights.end()) w = it->second;
    mass += w;
    if (rv == sv) agree += w;
  }
  if (mass == 0.0) return 0.0;  // nothing comparable: no evidence
  return agree / mass;
}

Result<BaselineResult> ProbabilisticAttrMatcher::Match(
    const Relation& r, const Relation& s) const {
  EID_RETURN_IF_ERROR(corr_.ValidateAgainst(r, s));
  BaselineResult out;
  if (corr_.CommonWorldAttributes().empty()) {
    out.applicability = Status::FailedPrecondition(
        "probabilistic attribute equivalence is not applicable: no common "
        "attributes");
    return out;
  }
  struct Candidate {
    double value;
    size_t i, j;
  };
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < r.size(); ++i) {
    TupleView e1 = r.tuple(i);
    for (size_t j = 0; j < s.size(); ++j) {
      TupleView e2 = s.tuple(j);
      EID_ASSIGN_OR_RETURN(double value, ComparisonValue(e1, e2));
      if (value >= options_.match_threshold) {
        candidates.push_back(Candidate{value, i, j});
      } else if (value < options_.non_match_threshold) {
        EID_RETURN_IF_ERROR(out.negative.Add(TuplePair{i, j}));
      }
    }
  }
  if (options_.one_to_one) {
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       if (a.value != b.value) return a.value > b.value;
                       if (a.i != b.i) return a.i < b.i;
                       return a.j < b.j;
                     });
    for (const Candidate& c : candidates) {
      if (out.matching.HasR(c.i) || out.matching.HasS(c.j)) continue;
      EID_RETURN_IF_ERROR(out.matching.Add(TuplePair{c.i, c.j}));
    }
  } else {
    for (const Candidate& c : candidates) {
      Status st = out.matching.Add(TuplePair{c.i, c.j});
      if (!st.ok() && out.applicability.ok()) {
        out.applicability = st;  // uniqueness violated by the raw model
      }
    }
  }
  return out;
}

}  // namespace eid
