#include "baselines/heuristic_rules.h"

#include "eid/extension.h"

namespace eid {

Result<BaselineResult> HeuristicRuleMatcher::Match(const Relation& r,
                                                   const Relation& s) const {
  EID_RETURN_IF_ERROR(corr_.ValidateAgainst(r, s));
  // Extend both sides with whatever the heuristic knowledge derives.
  ExtensionOptions ext;
  ext.derive_all = true;
  ext.derivation.mode = DerivationMode::kFirstMatch;  // heuristics: take the
                                                      // first answer
  EID_ASSIGN_OR_RETURN(
      ExtensionResult rx,
      ExtendRelation(r, Side::kR, corr_, ExtendedKey(std::vector<std::string>{}),
                     options_.heuristics, ext));
  EID_ASSIGN_OR_RETURN(
      ExtensionResult sx,
      ExtendRelation(s, Side::kS, corr_, ExtendedKey(std::vector<std::string>{}),
                     options_.heuristics, ext));

  BaselineResult out;
  for (size_t i = 0; i < rx.extended.size(); ++i) {
    TupleView e1 = rx.extended.tuple(i);
    for (size_t j = 0; j < sx.extended.size(); ++j) {
      if (options_.one_to_one && out.matching.HasR(i)) break;
      TupleView e2 = sx.extended.tuple(j);
      if (options_.one_to_one && out.matching.HasS(j)) continue;
      for (const IdentityRule& rule : rules_) {
        if (rule.Matches(e1, e2) == Truth::kTrue) {
          Status st = out.matching.Add(TuplePair{i, j});
          if (!st.ok() && out.applicability.ok()) out.applicability = st;
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace eid
