// Baseline 1 (§2.2): entity identification by key equivalence.
//
// Assumes some candidate key is common to both relations (e.g. Multibase):
// tuples agreeing on that key match. "This approach, however, is limited
// because the relations may have no common key, even though they might
// share some common key attributes" — in that case Match returns a
// FailedPrecondition applicability status (Example 1's scenario).
//
// The unstated soundness assumption the paper highlights: the common key
// must remain a key for the unionised set of real-world entities. When it
// does not (instance-level homonyms, Fig. 2), this baseline silently
// produces unsound matches — the comparison bench measures exactly that.

#ifndef EID_BASELINES_KEY_EQUIVALENCE_H_
#define EID_BASELINES_KEY_EQUIVALENCE_H_

#include "baselines/baseline.h"
#include "eid/correspondence.h"

namespace eid {

/// Options for KeyEquivalenceMatcher.
struct KeyEquivalenceOptions {
  /// Also declare non-matches: pairs disagreeing on the key are reported in
  /// the negative table (complete but only sound if the key is a key of
  /// the integrated world).
  bool declare_non_matches = false;
};

/// Matches on a shared candidate key.
class KeyEquivalenceMatcher : public BaselineMatcher {
 public:
  KeyEquivalenceMatcher(AttributeCorrespondence corr,
                        KeyEquivalenceOptions options = {})
      : corr_(std::move(corr)), options_(options) {}

  std::string Name() const override { return "key-equivalence"; }

  /// Fails (applicability) unless some candidate key of R maps, attribute
  /// for attribute, onto a candidate key of S under the correspondence.
  Result<BaselineResult> Match(const Relation& r,
                               const Relation& s) const override;

 private:
  AttributeCorrespondence corr_;
  KeyEquivalenceOptions options_;
};

}  // namespace eid

#endif  // EID_BASELINES_KEY_EQUIVALENCE_H_
