#include "baselines/baseline.h"

#include <set>

namespace eid {

MatchQuality Evaluate(const BaselineResult& result,
                      const std::vector<TuplePair>& ground_truth,
                      size_t r_size, size_t s_size) {
  MatchQuality q;
  q.total_pairs = r_size * s_size;
  std::set<TuplePair> truth(ground_truth.begin(), ground_truth.end());

  std::set<TuplePair> claimed_match(result.matching.pairs().begin(),
                                    result.matching.pairs().end());
  std::set<TuplePair> claimed_non(result.negative.pairs().begin(),
                                  result.negative.pairs().end());

  for (const TuplePair& p : claimed_match) {
    if (truth.count(p) > 0) ++q.true_matches;
    else ++q.false_matches;
  }
  for (const TuplePair& p : truth) {
    if (claimed_match.count(p) == 0) ++q.missed_matches;
  }
  for (const TuplePair& p : claimed_non) {
    if (truth.count(p) > 0) ++q.false_non_matches;
    else ++q.true_non_matches;
  }
  size_t decided = 0;
  for (size_t i = 0; i < r_size; ++i) {
    for (size_t j = 0; j < s_size; ++j) {
      TuplePair p{i, j};
      if (claimed_match.count(p) > 0 || claimed_non.count(p) > 0) ++decided;
    }
  }
  q.undetermined = q.total_pairs - decided;
  return q;
}

}  // namespace eid
