#include "baselines/probabilistic_key.h"

#include <algorithm>
#include <cctype>
#include <map>

namespace eid {

std::vector<std::string> SplitSubfields(const std::string& text,
                                        bool case_insensitive) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur += case_insensitive
                 ? static_cast<char>(
                       std::tolower(static_cast<unsigned char>(c)))
                 : c;
    } else if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

double SubfieldSimilarity(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::map<std::string, size_t> count_a, count_b;
  for (const std::string& t : a) count_a[t]++;
  for (const std::string& t : b) count_b[t]++;
  size_t intersection = 0, uni = 0;
  for (const auto& [token, ca] : count_a) {
    auto it = count_b.find(token);
    size_t cb = (it == count_b.end()) ? 0 : it->second;
    intersection += std::min(ca, cb);
    uni += std::max(ca, cb);
  }
  for (const auto& [token, cb] : count_b) {
    if (count_a.find(token) == count_a.end()) uni += cb;
  }
  return uni == 0 ? 1.0 : static_cast<double>(intersection) / uni;
}

Result<BaselineResult> ProbabilisticKeyMatcher::Match(
    const Relation& r, const Relation& s) const {
  EID_RETURN_IF_ERROR(corr_.ValidateAgainst(r, s));
  // Common key attributes: world attributes of R's primary key that S's
  // primary key also models (order by R's key).
  std::vector<size_t> r_key = r.PrimaryKeyIndices();
  std::vector<size_t> s_key = s.PrimaryKeyIndices();
  std::vector<std::pair<size_t, size_t>> aligned;
  for (size_t ri : r_key) {
    const std::string& r_local = r.schema().attribute(ri).name;
    for (const AttributeMapping& m : corr_.mappings()) {
      if (!m.in_r.has_value() || *m.in_r != r_local || !m.in_s.has_value()) {
        continue;
      }
      for (size_t si : s_key) {
        if (s.schema().attribute(si).name == *m.in_s) {
          aligned.push_back({ri, si});
        }
      }
    }
  }
  BaselineResult out;
  if (aligned.size() != r_key.size() || aligned.size() != s_key.size()) {
    out.applicability = Status::FailedPrecondition(
        "probabilistic key equivalence is not applicable: no common "
        "candidate key between '" +
        r.name() + "' and '" + s.name() + "'");
    return out;
  }

  // Key text per tuple: concatenated key values.
  auto key_subfields = [&](const Row& row, bool r_side) {
    std::string text;
    for (const auto& [ri, si] : aligned) {
      text += row[r_side ? ri : si].ToString();
      text += ' ';
    }
    return SplitSubfields(text, options_.case_insensitive);
  };
  std::vector<std::vector<std::string>> r_fields, s_fields;
  r_fields.reserve(r.size());
  s_fields.reserve(s.size());
  for (const Row& row : r.rows()) r_fields.push_back(key_subfields(row, true));
  for (const Row& row : s.rows()) s_fields.push_back(key_subfields(row, false));

  // Greedy best-first one-to-one assignment above the match threshold.
  struct Candidate {
    double similarity;
    size_t i, j;
  };
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < r.size(); ++i) {
    for (size_t j = 0; j < s.size(); ++j) {
      double sim = SubfieldSimilarity(r_fields[i], s_fields[j]);
      if (sim >= options_.match_threshold) {
        candidates.push_back(Candidate{sim, i, j});
      } else if (sim < options_.non_match_threshold) {
        EID_RETURN_IF_ERROR(out.negative.Add(TuplePair{i, j}));
      }
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.similarity != b.similarity) {
                       return a.similarity > b.similarity;
                     }
                     if (a.i != b.i) return a.i < b.i;
                     return a.j < b.j;
                   });
  for (const Candidate& c : candidates) {
    if (out.matching.HasR(c.i) || out.matching.HasS(c.j)) continue;
    EID_RETURN_IF_ERROR(out.matching.Add(TuplePair{c.i, c.j}));
  }
  return out;
}

}  // namespace eid
