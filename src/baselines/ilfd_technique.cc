#include "baselines/ilfd_technique.h"

namespace eid {

Result<BaselineResult> IlfdTechniqueMatcher::Match(const Relation& r,
                                                   const Relation& s) const {
  EID_ASSIGN_OR_RETURN(IdentificationResult result, identifier_.Identify(r, s));
  BaselineResult out;
  out.matching = std::move(result.matching);
  out.negative = std::move(result.negative.table);
  if (!result.uniqueness.ok()) out.applicability = result.uniqueness;
  else if (!result.consistency.ok()) out.applicability = result.consistency;
  return out;
}

}  // namespace eid
