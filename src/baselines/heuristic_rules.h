// Baseline 5 (§2.2): heuristic rules (Wang & Madnick 1989).
//
// A knowledge-based approach: heuristic inference rules derive additional
// information about the instances and assert matches. "Because the
// knowledge used is heuristic in nature, the matching result produced may
// not be correct." We model this as identity-rule-shaped implications that
// are *not* subjected to the paper's §3.2 well-formedness validation —
// e.g. "same name ⇒ same entity" — plus optional ILFD-style heuristics
// used during derivation. Comparing this matcher with the validated
// EntityIdentifier isolates the value of the soundness discipline.

#ifndef EID_BASELINES_HEURISTIC_RULES_H_
#define EID_BASELINES_HEURISTIC_RULES_H_

#include "baselines/baseline.h"
#include "eid/correspondence.h"
#include "ilfd/derivation.h"
#include "rules/identity_rule.h"

namespace eid {

/// Options for HeuristicRuleMatcher.
struct HeuristicRuleOptions {
  /// Heuristic derivation knowledge applied before rule evaluation (may be
  /// plausible-but-wrong, unlike validated ILFDs).
  IlfdSet heuristics;
  /// Enforce one-to-one matching (first rule hit wins).
  bool one_to_one = true;
};

/// Applies unvalidated match rules over (heuristically extended) tuples.
class HeuristicRuleMatcher : public BaselineMatcher {
 public:
  HeuristicRuleMatcher(AttributeCorrespondence corr,
                       std::vector<IdentityRule> rules,
                       HeuristicRuleOptions options = {})
      : corr_(std::move(corr)),
        rules_(std::move(rules)),
        options_(std::move(options)) {}

  std::string Name() const override { return "heuristic-rules"; }

  Result<BaselineResult> Match(const Relation& r,
                               const Relation& s) const override;

 private:
  AttributeCorrespondence corr_;
  std::vector<IdentityRule> rules_;  // deliberately not Validate()d
  HeuristicRuleOptions options_;
};

}  // namespace eid

#endif  // EID_BASELINES_HEURISTIC_RULES_H_
