#include "baselines/user_specified.h"

namespace eid {

Result<BaselineResult> UserSpecifiedMatcher::Match(const Relation& r,
                                                   const Relation& s) const {
  BaselineResult out;
  for (const UserEquivalence& e : assertions_) {
    std::optional<size_t> ri = r.FindByKey(e.r_key_values);
    if (!ri.has_value()) {
      return Status::NotFound(
          "user-specified assertion names a missing R tuple");
    }
    std::optional<size_t> si = s.FindByKey(e.s_key_values);
    if (!si.has_value()) {
      return Status::NotFound(
          "user-specified assertion names a missing S tuple");
    }
    Status st = out.matching.Add(TuplePair{*ri, *si});
    if (!st.ok()) return st;  // contradictory user assertions
  }
  return out;
}

}  // namespace eid
