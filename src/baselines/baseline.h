// Common interface for the §2.2 baseline entity-identification techniques.
//
// The paper surveys five existing approaches before proposing its own:
//   1. key equivalence (Multibase)           — baselines/key_equivalence.h
//   2. user-specified equivalence (Pegasus)  — baselines/user_specified.h
//   3. probabilistic key equivalence (Pu)    — baselines/probabilistic_key.h
//   4. probabilistic attribute equivalence
//      (Chatterjee & Segev)                  — baselines/probabilistic_attr.h
//   5. heuristic rules (Wang & Madnick)      — baselines/heuristic_rules.h
//
// All implement BaselineMatcher so the benchmark harness can compare them
// (and the paper's ILFD/extended-key technique, adapted via an adapter in
// the bench code) on soundness violations, precision/recall, and
// undetermined rate against generated ground truth.

#ifndef EID_BASELINES_BASELINE_H_
#define EID_BASELINES_BASELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "eid/match_tables.h"

namespace eid {

/// Outcome of a baseline run: claimed matches and claimed non-matches.
/// Pairs in neither set are undetermined.
struct BaselineResult {
  MatchTable matching{/*negative=*/false};
  MatchTable negative{/*negative=*/true};
  /// Some techniques fail outright in some settings — e.g. key equivalence
  /// without a common key. OK otherwise.
  Status applicability = Status::Ok();
};

/// Interface implemented by every §2.2 technique.
class BaselineMatcher {
 public:
  virtual ~BaselineMatcher() = default;

  /// Technique name for reports ("key-equivalence", ...).
  virtual std::string Name() const = 0;

  /// Decides matches between `r` and `s`.
  virtual Result<BaselineResult> Match(const Relation& r,
                                       const Relation& s) const = 0;
};

/// Quality of a technique against ground truth.
struct MatchQuality {
  size_t true_matches = 0;        // claimed matches that are correct
  size_t false_matches = 0;       // claimed matches that are wrong (unsound!)
  size_t missed_matches = 0;      // true pairs not claimed
  size_t true_non_matches = 0;    // claimed non-matches that are correct
  size_t false_non_matches = 0;   // claimed non-matches that are wrong
  size_t undetermined = 0;        // pairs left undecided
  size_t total_pairs = 0;

  double Precision() const {
    size_t claimed = true_matches + false_matches;
    return claimed == 0 ? 1.0 : static_cast<double>(true_matches) / claimed;
  }
  double Recall() const {
    size_t actual = true_matches + missed_matches;
    return actual == 0 ? 1.0 : static_cast<double>(true_matches) / actual;
  }
  /// Sound = no false claims in either direction (the paper's criterion).
  bool Sound() const { return false_matches == 0 && false_non_matches == 0; }
  double UndeterminedRate() const {
    return total_pairs == 0
               ? 0.0
               : static_cast<double>(undetermined) / total_pairs;
  }
};

/// Scores a result against the ground-truth matching (true pairs).
MatchQuality Evaluate(const BaselineResult& result,
                      const std::vector<TuplePair>& ground_truth,
                      size_t r_size, size_t s_size);

}  // namespace eid

#endif  // EID_BASELINES_BASELINE_H_
