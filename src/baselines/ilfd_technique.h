// Adapter exposing the paper's own technique (EntityIdentifier) through
// the BaselineMatcher interface, so the comparison bench scores all six
// approaches uniformly.

#ifndef EID_BASELINES_ILFD_TECHNIQUE_H_
#define EID_BASELINES_ILFD_TECHNIQUE_H_

#include "baselines/baseline.h"
#include "eid/identifier.h"

namespace eid {

/// The extended-key + ILFD technique as a BaselineMatcher.
class IlfdTechniqueMatcher : public BaselineMatcher {
 public:
  explicit IlfdTechniqueMatcher(IdentifierConfig config)
      : identifier_(std::move(config)) {}

  std::string Name() const override { return "extended-key+ilfd"; }

  Result<BaselineResult> Match(const Relation& r,
                               const Relation& s) const override;

 private:
  EntityIdentifier identifier_;
};

}  // namespace eid

#endif  // EID_BASELINES_ILFD_TECHNIQUE_H_
