// Experiment S7 — snapshot save/load vs rebuild-from-rows cold start.
//
// For each world size the harness identifies once, then measures:
//   * save_ms     — WriteSnapshot of the full world image;
//   * load_ms     — LoadSnapshot: map, checksum, decode dictionary +
//                   relations + Elias-Fano postings + fingerprints +
//                   MT/NMT + provenance + rule program;
//   * rebuild_ms  — the path a process without a snapshot must take to
//                   reach the same state, starting from durable bytes
//                   only: read the source relations from disk (CSV), parse
//                   the ILFD rule file, build the IlfdSet, compile the
//                   rule session into a fresh EntityIdentifier, and re-run
//                   Identify (extension, derivation, joins, rule sweeps).
//                   The durable inputs are written once outside the timed
//                   region; everything a restarted process would execute
//                   is inside it. This mirrors what load_ms pays: the
//                   snapshot's timed region includes rule-program decode
//                   and IlfdSet construction, so the baseline's includes
//                   their from-text equivalents.
//
// The speedup column (rebuild_ms / load_ms) is the cold-start win the
// snapshot subsystem exists for; EXPERIMENTS.md S7 records the --full
// n=65536 row. file_bytes vs ram_bytes shows what the Elias-Fano and
// dictionary encodings buy over the in-memory representation.
//
// Output: BENCH_snapshot.json ($EID_BENCH_JSON overrides), merged per
// (name, n) so smoke runs refresh small-n records without disturbing
// committed full-sweep ones.
//
// Usage:  bench_snapshot [--full]

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "eid.h"
#include "relational/csv.h"
#include "storage/snapshot.h"
#include "workload/generator.h"

namespace eid {
namespace {

GeneratedWorld MakeWorld(size_t per_side) {
  GeneratorConfig gen;
  gen.seed = 1234;
  gen.overlap_entities = per_side / 2;
  gen.r_only_entities = per_side / 2;
  gen.s_only_entities = per_side / 2;
  // Names are shared by ~3 entities on average — the paper's motivating
  // regime (homonyms force real identity/distinctness work; near-unique
  // names would make identification trivial and the rebuild baseline
  // meaninglessly cheap).
  gen.name_pool = per_side / 2;
  gen.street_pool = per_side * 3;
  gen.cities = 32;
  gen.speciality_pool = 128;
  gen.cuisines = 16;
  // The rule program is domain knowledge (speciality→cuisine taxonomies,
  // per-restaurant facts a curator wrote down); it does not grow linearly
  // with the row count the way the pools above must (pool size drives key
  // uniqueness and blocking selectivity). Cap it at a fixed budget so the
  // large-n worlds carry a realistic rules-to-rows ratio. At per_side ≤
  // 1024 the caps are above the natural counts and change nothing.
  const size_t entities =
      gen.overlap_entities + gen.r_only_entities + gen.s_only_entities;
  gen.max_street_rules = 4096;
  gen.ilfd_coverage = std::min(1.0, 4096.0 / static_cast<double>(entities));
  Result<GeneratedWorld> world = GenerateWorld(gen);
  EID_CHECK(world.ok());
  bench::RequireCleanWorld("snapshot per_side=" + std::to_string(per_side),
                           *world);
  return std::move(world).value();
}

size_t ValueRamBytes(const Value& v) {
  size_t bytes = sizeof(Value);
  if (v.type() == ValueType::kString) bytes += v.AsString().size();
  return bytes;
}

size_t RelationRamBytes(const Relation& rel) {
  size_t bytes = 0;
  for (const Row& row : rel.rows()) {
    for (const Value& v : row) bytes += ValueRamBytes(v);
  }
  return bytes;
}

/// In-memory footprint of what the snapshot persists: the four
/// relations, both pair lists, and the provenance values.
size_t WorldRamBytes(const storage::LoadedWorld& world) {
  size_t bytes = RelationRamBytes(world.r) + RelationRamBytes(world.s) +
                 RelationRamBytes(world.r_extended) +
                 RelationRamBytes(world.s_extended);
  bytes += (world.matching.size() + world.negative.size()) *
           sizeof(TuplePair);
  for (const std::vector<Derivation>* traces :
       {&world.r_traces, &world.s_traces}) {
    for (const Derivation& d : *traces) {
      for (const auto& [attribute, value] : d.derived) {
        bytes += attribute.size() + ValueRamBytes(value);
      }
      bytes += d.steps.size() * sizeof(DerivationStep);
      bytes += d.conflicts.size() * sizeof(DerivationConflict);
    }
  }
  return bytes;
}

struct Row7 {
  size_t n = 0;
  double save_ms = 0.0;
  double load_ms = 0.0;
  double rebuild_ms = 0.0;
  size_t file_bytes = 0;
  size_t ram_bytes = 0;
  size_t dict_values = 0;
};

std::string ToLine(const Row7& r) {
  std::ostringstream out;
  out << "  {\"name\": \"snapshot\", \"n\": " << r.n
      << ", \"save_ms\": " << r.save_ms << ", \"load_ms\": " << r.load_ms
      << ", \"rebuild_ms\": " << r.rebuild_ms << ", \"speedup\": "
      << (r.load_ms > 0.0 ? r.rebuild_ms / r.load_ms : 0.0)
      << ", \"file_bytes\": " << r.file_bytes
      << ", \"ram_bytes\": " << r.ram_bytes
      << ", \"dict_values\": " << r.dict_values << "}";
  return out.str();
}

/// Merge-on-key writer in the BENCH_*.json house style: existing records
/// with the same (name, n) prefix are replaced, others preserved.
bool WriteJson(const std::string& path, const std::vector<Row7>& rows) {
  std::map<std::string, std::string> lines;
  std::vector<std::string> order;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("  {\"name\"", 0) != 0) continue;
    if (!line.empty() && line.back() == ',') line.pop_back();
    std::string key = line.substr(0, line.find("\"save_ms\""));
    if (lines.emplace(key, line).second) order.push_back(key);
  }
  in.close();
  for (const Row7& r : rows) {
    std::string full = ToLine(r);
    std::string key = full.substr(0, full.find("\"save_ms\""));
    if (lines.emplace(key, full).second) {
      order.push_back(key);
    } else {
      lines[key] = full;
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "[\n";
  for (size_t i = 0; i < order.size(); ++i) {
    out << lines[order[i]] << (i + 1 < order.size() ? ",\n" : "\n");
  }
  out << "]\n";
  return out.good();
}

/// The identification session, paper-faithful (§6 drives matching with
/// name/city/speciality comparisons): three identity rules and the three
/// same-name distinctness complements. Every non-name attribute is native
/// to exactly one side, so each rule forces derivation — cuisine reaches
/// S' only through the speciality→cuisine taxonomy (full coverage, the
/// extension sweep touches every S row), city and speciality reach R'
/// through the capped street→city and per-entity rules. Selective join
/// rules rather than the Θ(n²)-output Prop-1 NMT keep the tables
/// near-linear so n reaches 65536 (same reasoning as
/// BM_ParallelIdentifyBlocked). Distinctness via != is sound here because
/// each generated entity has exactly one street/city/speciality.
IdentifierConfig MakeSession(const Relation& r, const Relation& s,
                             IlfdSet ilfds) {
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = ExtendedKey({"name", "speciality"});
  config.ilfds = std::move(ilfds);
  const std::pair<const char*, const char*> kIdentity[] = {
      {"name_cuisine_eq", "e1.name = e2.name & e1.cuisine = e2.cuisine"},
      {"name_city_eq", "e1.name = e2.name & e1.city = e2.city"},
      {"name_speciality_eq",
       "e1.name = e2.name & e1.speciality = e2.speciality"},
  };
  for (const auto& [name, text] : kIdentity) {
    Result<IdentityRule> rule = ParseIdentityRule(name, text);
    EID_CHECK(rule.ok());
    config.identity_rules.push_back(*rule);
  }
  const std::pair<const char*, const char*> kDistinct[] = {
      {"same_name_other_cuisine",
       "e1.name = e2.name & e1.cuisine != e2.cuisine"},
      {"same_name_other_city", "e1.name = e2.name & e1.city != e2.city"},
      {"same_name_other_speciality",
       "e1.name = e2.name & e1.speciality != e2.speciality"},
  };
  for (const auto& [name, text] : kDistinct) {
    Result<DistinctnessRule> rule = ParseDistinctnessRule(name, text);
    EID_CHECK(rule.ok());
    config.distinctness_rules.push_back(*rule);
  }
  config.distinctness_from_ilfds = false;
  return config;
}

Row7 Measure(size_t per_side, int repeats) {
  GeneratedWorld world = MakeWorld(per_side);
  IdentifierConfig config = MakeSession(world.r, world.s, world.ilfds);

  Row7 row;
  row.n = per_side;

  EntityIdentifier identifier(config);
  Result<IdentificationResult> result = identifier.Identify(world.r, world.s);
  EID_CHECK(result.ok());

  const std::string path = "/tmp/bench_snapshot.eidsnap";
  storage::WorldImage image =
      storage::ImageOf(world.r, world.s, config, *result);

  // The rebuild baseline starts from durable storage, like the snapshot
  // does: a process that lost its memory has neither the source rows nor
  // the parsed rule program in RAM. Written once here; reading them back
  // is part of rebuild.
  const std::string r_csv = "/tmp/bench_snapshot_r.csv";
  const std::string s_csv = "/tmp/bench_snapshot_s.csv";
  const std::string ilfd_path = "/tmp/bench_snapshot.ilfds";
  EID_CHECK(WriteCsvFile(world.r, r_csv).ok());
  EID_CHECK(WriteCsvFile(world.s, s_csv).ok());
  {
    // One `antecedent -> consequent` line per ILFD — the text form
    // ParseIlfdList reads back (IlfdSet::ToString adds display labels).
    std::ofstream ilfd_out(ilfd_path, std::ios::trunc);
    for (size_t i = 0; i < world.ilfds.size(); ++i) {
      ilfd_out << world.ilfds.ilfd(i).ToString() << "\n";
    }
    EID_CHECK(ilfd_out.good());
  }

  row.save_ms = 1e30;
  row.load_ms = 1e30;
  row.rebuild_ms = 1e30;
  for (int rep = 0; rep < repeats; ++rep) {
    {
      bench::WallTimer timer;
      Status st = storage::WriteSnapshot(image, path);
      EID_CHECK(st.ok());
      row.save_ms = std::min(row.save_ms, timer.ElapsedMs());
    }
    {
      bench::WallTimer timer;
      Result<storage::LoadedWorld> loaded = storage::LoadSnapshot(path);
      EID_CHECK(loaded.ok());
      row.load_ms = std::min(row.load_ms, timer.ElapsedMs());
      if (rep == 0) {
        row.dict_values = loaded->dictionary.size();
        row.ram_bytes = WorldRamBytes(*loaded);
        // The loaded tables must equal the saved run — a bench that
        // measures a wrong answer measures nothing.
        EID_CHECK(loaded->matching.pairs() == result->matching.pairs());
        EID_CHECK(loaded->negative.pairs() ==
                  result->negative.table.pairs());
      }
    }
    {
      // Rebuild baseline: everything the load replaces, from durable
      // bytes only — re-reading the sources, re-parsing the rule file,
      // rebuilding the IlfdSet, compiling a *fresh* identifier (a
      // restarted process has no warm rule programs, memo caches or
      // column indexes), and re-deriving the extended relations, MT/NMT
      // and provenance.
      bench::WallTimer timer;
      Result<Relation> r_rows = ReadCsvFile(r_csv, "R");
      EID_CHECK(r_rows.ok());
      Result<Relation> s_rows = ReadCsvFile(s_csv, "S");
      EID_CHECK(s_rows.ok());
      // The source catalogs declare candidate keys (R: (name, street);
      // S: (name, city)); CSV carries rows only, so re-apply the
      // declarations. The paper's key-based reasoning consumes them, and
      // the snapshot restores them too — a keyless baseline would rebuild
      // a weaker world than the one the snapshot loads.
      Relation r("R", r_rows->schema());
      EID_CHECK(r.DeclareKey({"name", "street"}).ok());
      {
        std::vector<Row> rows(r_rows->rows().begin(), r_rows->rows().end());
        r.AdoptRows(std::move(rows));
      }
      Relation s("S", s_rows->schema());
      EID_CHECK(s.DeclareKey({"name", "city"}).ok());
      {
        std::vector<Row> rows(s_rows->rows().begin(), s_rows->rows().end());
        s.AdoptRows(std::move(rows));
      }
      std::ifstream ilfd_in(ilfd_path);
      std::stringstream ilfd_text;
      ilfd_text << ilfd_in.rdbuf();
      Result<std::vector<Ilfd>> parsed = ParseIlfdList(ilfd_text.str());
      EID_CHECK(parsed.ok());
      IlfdSet rebuilt_ilfds;
      for (Ilfd& f : *parsed) rebuilt_ilfds.Add(std::move(f));
      EntityIdentifier cold(MakeSession(r, s, std::move(rebuilt_ilfds)));
      Result<IdentificationResult> again = cold.Identify(r, s);
      EID_CHECK(again.ok());
      row.rebuild_ms = std::min(row.rebuild_ms, timer.ElapsedMs());
      if (rep == 0) {
        EID_CHECK(again->matching.pairs() == result->matching.pairs());
        EID_CHECK(again->negative.table.pairs() ==
                  result->negative.table.pairs());
      }
    }
  }
  {
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    row.file_bytes = static_cast<size_t>(f.tellg());
  }
  std::remove(path.c_str());
  std::remove(r_csv.c_str());
  std::remove(s_csv.c_str());
  std::remove(ilfd_path.c_str());
  return row;
}

}  // namespace
}  // namespace eid

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::string(argv[1]) == "--full";
  eid::bench::Banner("S7", "snapshot cold start vs rebuild-from-rows");

  std::vector<size_t> sizes = full
      ? std::vector<size_t>{1024, 4096, 16384, 65536}
      : std::vector<size_t>{256, 1024};
  const int repeats = full ? 3 : 2;

  std::printf("%8s %10s %10s %12s %9s %12s %12s\n", "n", "save_ms",
              "load_ms", "rebuild_ms", "speedup", "file_bytes", "ram_bytes");
  std::vector<eid::Row7> rows;
  for (size_t n : sizes) {
    eid::Row7 row = eid::Measure(n, repeats);
    rows.push_back(row);
    std::printf("%8zu %10.2f %10.2f %12.2f %8.1fx %12zu %12zu\n", row.n,
                row.save_ms, row.load_ms, row.rebuild_ms,
                row.rebuild_ms / row.load_ms, row.file_bytes, row.ram_bytes);
  }

  const char* env = std::getenv("EID_BENCH_JSON");
  const std::string path =
      env != nullptr && *env != '\0' ? env : "BENCH_snapshot.json";
  if (!eid::WriteJson(path, rows)) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << path << "\n";
  return 0;
}
