// Experiment S2 — ILFD reasoning scaling (google-benchmark).
//
// The paper notes (§5.2) that computing the full closure F⁺ is expensive
// (it can be exponentially large) while the symbol closure X⁺_F is cheap —
// "the algorithm for computing X⁺_F is the same as that for computing the
// closure of a set of attributes with respect to a set of FDs". Measured
// here:
//   * X⁺_F (forward closure) vs |F| — linear in total ILFD size;
//   * chain-depth sweeps (derivations through k intermediate attributes);
//   * per-tuple derivation (exhaustive vs first-match);
//   * Armstrong proof construction + verification.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "compile/derivation_program.h"
#include "eid.h"
#include "workload/generator.h"
#include "workload/rng.h"

namespace eid {
namespace {

/// F with `chains` independent chains of length `depth`:
/// a_c0=1 -> a_c1=1 -> ... -> a_c(depth)=1.
IlfdSet ChainSet(size_t chains, size_t depth) {
  IlfdSet set;
  for (size_t c = 0; c < chains; ++c) {
    for (size_t d = 0; d < depth; ++d) {
      std::string from = "a" + std::to_string(c) + "_" + std::to_string(d);
      std::string to = "a" + std::to_string(c) + "_" + std::to_string(d + 1);
      set.Add(Ilfd::Implies({Atom{from, Value::Int(1)}},
                            Atom{to, Value::Int(1)}));
    }
  }
  return set;
}

void BM_ConditionClosure(benchmark::State& state) {
  size_t chains = static_cast<size_t>(state.range(0));
  IlfdSet set = ChainSet(chains, 8);
  std::vector<Atom> seed;
  for (size_t c = 0; c < chains; ++c) {
    seed.push_back(Atom{"a" + std::to_string(c) + "_0", Value::Int(1)});
  }
  for (auto _ : state) {
    std::vector<Atom> closure = set.ConditionClosure(seed);
    benchmark::DoNotOptimize(closure.size());
  }
  state.SetComplexityN(static_cast<int64_t>(set.size()));
  state.counters["ilfds"] = static_cast<double>(set.size());
}
BENCHMARK(BM_ConditionClosure)->Range(8, 512)->Complexity(benchmark::oN);

void BM_DerivationChainDepth(benchmark::State& state) {
  size_t depth = static_cast<size_t>(state.range(0));
  IlfdSet set = ChainSet(/*chains=*/1, depth);
  Relation r("R", Schema({Attribute{"a0_0", ValueType::kInt}}));
  EID_CHECK(r.Insert(Row{Value::Int(1)}).ok());
  for (auto _ : state) {
    Result<Derivation> d = DeriveTuple(r.tuple(0), set);
    EID_CHECK(d.ok());
    benchmark::DoNotOptimize(d->derived.size());
  }
  state.counters["derived"] = static_cast<double>(depth);
}
BENCHMARK(BM_DerivationChainDepth)->RangeMultiplier(4)->Range(4, 256);

void BM_DerivationFirstMatchChainDepth(benchmark::State& state) {
  size_t depth = static_cast<size_t>(state.range(0));
  IlfdSet set = ChainSet(/*chains=*/1, depth);
  Relation r("R", Schema({Attribute{"a0_0", ValueType::kInt}}));
  EID_CHECK(r.Insert(Row{Value::Int(1)}).ok());
  DerivationOptions opts;
  opts.mode = DerivationMode::kFirstMatch;
  opts.target_attributes = {"a0_" + std::to_string(depth)};
  for (auto _ : state) {
    Result<Derivation> d = DeriveTuple(r.tuple(0), set, opts);
    EID_CHECK(d.ok());
    benchmark::DoNotOptimize(d->derived.size());
  }
}
BENCHMARK(BM_DerivationFirstMatchChainDepth)
    ->RangeMultiplier(4)
    ->Range(4, 256);

void BM_ImpliesQuery(benchmark::State& state) {
  size_t chains = static_cast<size_t>(state.range(0));
  IlfdSet set = ChainSet(chains, 8);
  Ilfd query = Ilfd::Implies({Atom{"a0_0", Value::Int(1)}},
                             Atom{"a0_8", Value::Int(1)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.Implies(query));
  }
  state.counters["ilfds"] = static_cast<double>(set.size());
}
BENCHMARK(BM_ImpliesQuery)->Range(8, 512);

void BM_ArmstrongProofBuildAndVerify(benchmark::State& state) {
  size_t depth = static_cast<size_t>(state.range(0));
  IlfdSet set = ChainSet(/*chains=*/1, depth);
  Ilfd target = Ilfd::Implies({Atom{"a0_0", Value::Int(1)}},
                              Atom{"a0_" + std::to_string(depth),
                                   Value::Int(1)});
  AtomTable table;
  for (auto _ : state) {
    Result<Proof> proof = set.Prove(target, &table);
    EID_CHECK(proof.ok());
    AtomTable scratch = set.atoms();
    Implication imp = set.ToImplication(target, &scratch);
    Status verified = VerifyProof(set.kb(), *proof, imp);
    EID_CHECK(verified.ok());
    benchmark::DoNotOptimize(proof->steps.size());
  }
  state.counters["proof_steps"] = static_cast<double>(3 * depth + 2);
}
BENCHMARK(BM_ArmstrongProofBuildAndVerify)->RangeMultiplier(4)->Range(4, 64);

void BM_MinimalCover(benchmark::State& state) {
  // Redundancy removal is quadratic in |F| times closure cost — the
  // expensive operation the paper alludes to for F⁺-style reasoning.
  size_t chains = static_cast<size_t>(state.range(0));
  IlfdSet set = ChainSet(chains, 4);
  // Add one redundant (transitively implied) ILFD per chain.
  for (size_t c = 0; c < chains; ++c) {
    set.Add(Ilfd::Implies({Atom{"a" + std::to_string(c) + "_0",
                                Value::Int(1)}},
                          Atom{"a" + std::to_string(c) + "_4",
                               Value::Int(1)}));
  }
  for (auto _ : state) {
    IlfdSet cover = set.MinimalCover();
    benchmark::DoNotOptimize(cover.size());
  }
  state.counters["ilfds"] = static_cast<double>(set.size());
}
BENCHMARK(BM_MinimalCover)->RangeMultiplier(4)->Range(4, 64);

void BM_ViolationScan(benchmark::State& state) {
  // Tuple-at-a-time ILFD violation checking over a relation.
  size_t rows = static_cast<size_t>(state.range(0));
  IlfdSet set;
  for (int v = 0; v < 32; ++v) {
    set.Add(Ilfd::Implies({Atom{"speciality", Value::Int(v)}},
                          Atom{"cuisine", Value::Int(v % 7)}));
  }
  Relation r("R", Schema({Attribute{"speciality", ValueType::kInt},
                          Attribute{"cuisine", ValueType::kInt}}));
  Rng rng(5);
  for (size_t i = 0; i < rows; ++i) {
    int64_t sp = static_cast<int64_t>(rng.Below(32));
    EID_CHECK(r.Insert(Row{Value::Int(sp), Value::Int(sp % 7)}).ok());
  }
  for (auto _ : state) {
    std::vector<IlfdViolation> v = CheckViolations(r, set);
    benchmark::DoNotOptimize(v.size());
  }
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_ViolationScan)->Range(64, 4096)->Complexity(benchmark::oN);

// --- Thread sweep: per-tuple derivation via parallel extension ----------
// The derivation workload the pool shards in ExtendRelation; ns/op per
// (n, threads) lands in BENCH_scaling.json via the custom main.

void BM_ParallelExtension(benchmark::State& state) {
  size_t per_side = static_cast<size_t>(state.range(0));
  GeneratorConfig gen;
  gen.seed = 1234;
  gen.overlap_entities = per_side / 2;
  gen.r_only_entities = per_side / 2;
  gen.s_only_entities = per_side / 2;
  gen.name_pool = per_side * 2;
  gen.street_pool = per_side * 3;
  gen.cities = 32;
  gen.speciality_pool = 128;
  gen.cuisines = 16;
  Result<GeneratedWorld> world = GenerateWorld(gen);
  EID_CHECK(world.ok());
  bench::RequireCleanWorld(
      "scaling_ilfd per_side=" + std::to_string(per_side), *world);
  ExtensionOptions options;
  options.threads = static_cast<int>(state.range(1));
  double total_ms = 0;
  size_t iterations = 0;
  for (auto _ : state) {
    bench::WallTimer timer;
    Result<ExtensionResult> rx =
        ExtendRelation(world->r, Side::kR, world->correspondence,
                       world->extended_key, world->ilfds, options);
    EID_CHECK(rx.ok());
    total_ms += timer.ElapsedMs();
    ++iterations;
    benchmark::DoNotOptimize(rx->extended.size());
  }
  state.counters["threads"] = static_cast<double>(options.threads);
  bench::GlobalJson().Record("extension", per_side, options.threads,
                             total_ms * 1e6 / static_cast<double>(iterations));
}
BENCHMARK(BM_ParallelExtension)->ArgsProduct({{1024, 4096}, {1, 2, 4, 8}});

// --- Engine comparison: compiled + memo vs per-tuple interpreter --------
// CPU time (CpuTimer), single-threaded, so the reported ratio survives
// shared single-core CI runners (see README "Performance"). ns/op per
// (engine, n) lands in the JSON via the custom main; EXPERIMENTS.md
// records the n=4096 ratio.

/// A taxonomy workload: street determines city, city determines county —
/// bounded domains shared by many tuples, the shape of the paper's
/// restaurant ILFDs. Projections repeat heavily, so the memo caches one
/// derivation per distinct (street, city, county) projection.
struct TaxonomyWorkload {
  Schema schema{std::vector<Attribute>{}};
  std::vector<Row> rows;
  IlfdSet ilfds;
};

TaxonomyWorkload MakeTaxonomy(size_t rows) {
  constexpr size_t kStreets = 128;
  constexpr size_t kCities = 32;
  TaxonomyWorkload w;
  w.schema = Schema::OfStrings({"name", "street", "city", "county"});
  for (size_t t = 0; t < kStreets; ++t) {
    w.ilfds.Add(Ilfd::Implies(
        {Atom{"street", Value::String("Street" + std::to_string(t))}},
        Atom{"city", Value::String("City" + std::to_string(t % kCities))}));
  }
  for (size_t c = 0; c < kCities; ++c) {
    w.ilfds.Add(Ilfd::Implies(
        {Atom{"city", Value::String("City" + std::to_string(c))}},
        Atom{"county", Value::String("County" + std::to_string(c % 8))}));
  }
  w.rows.reserve(rows);
  Rng rng(77);
  for (size_t i = 0; i < rows; ++i) {
    std::string street = "Street" + std::to_string(rng.Below(kStreets));
    w.rows.push_back(Row{Value::String("Name" + std::to_string(i)),
                         Value::String(std::move(street)), Value::Null(),
                         Value::Null()});
  }
  return w;
}

void RunDerivationEngine(benchmark::State& state, bool compile) {
  TaxonomyWorkload w = MakeTaxonomy(static_cast<size_t>(state.range(0)));
  DerivationOptions opts;  // kExhaustive, kError
  // Target the attributes the extension stage actually fills, as
  // ExtendRelation does — both engines filter to the same write set.
  opts.target_attributes = {"city", "county"};
  double total_ms = 0;
  size_t iterations = 0;
  size_t hits = 0, misses = 0;
  for (auto _ : state) {
    bench::CpuTimer timer;
    size_t derived = 0;
    if (compile) {
      // Lowering happens inside the timed region: the compile cost is
      // part of every session, exactly as in ExtendRelation (which also
      // borrows the knowledge base — the IlfdSet outlives the call).
      compile::DerivationProgram program =
          compile::DerivationProgram::CompileBorrowed(w.schema, w.ilfds, opts);
      ClosureEvaluator evaluator(&program.kb());
      compile::DerivationMemo memo;
      std::vector<compile::DerivationWrite> writes;
      for (const Row& row : w.rows) {
        Result<Derivation> d = program.Derive(row, &evaluator, &memo, &writes);
        EID_CHECK(d.ok());
        derived += d->derived.size();
      }
      hits = memo.hits();
      misses = memo.misses();
    } else {
      ClosureEvaluator evaluator(&w.ilfds.kb());
      for (const Row& row : w.rows) {
        TupleView view(&w.schema, &row);
        Result<Derivation> d = DeriveTuple(view, w.ilfds, opts, &evaluator);
        EID_CHECK(d.ok());
        derived += d->derived.size();
      }
    }
    total_ms += timer.ElapsedMs();
    ++iterations;
    benchmark::DoNotOptimize(derived);
  }
  state.counters["memo_hits"] = static_cast<double>(hits);
  state.counters["memo_misses"] = static_cast<double>(misses);
  bench::GlobalJson().Record(
      compile ? "derivation_compiled" : "derivation_interpreter",
      static_cast<size_t>(state.range(0)), /*threads=*/1,
      total_ms * 1e6 / static_cast<double>(iterations));
}

void BM_DerivationCompiled(benchmark::State& state) {
  RunDerivationEngine(state, /*compile=*/true);
}
void BM_DerivationInterpreter(benchmark::State& state) {
  RunDerivationEngine(state, /*compile=*/false);
}
BENCHMARK(BM_DerivationCompiled)->RangeMultiplier(4)->Range(256, 4096);
BENCHMARK(BM_DerivationInterpreter)->RangeMultiplier(4)->Range(256, 4096);

/// End-to-end extension on the generated world (per-entity ILFDs mention
/// `name`, so memo projections are near-unique here: this isolates the
/// gain from binding/compilation alone, without memo help).
void RunExtensionEngine(benchmark::State& state, bool compile) {
  size_t per_side = static_cast<size_t>(state.range(0));
  GeneratorConfig gen;
  gen.seed = 1234;
  gen.overlap_entities = per_side / 2;
  gen.r_only_entities = per_side / 2;
  gen.s_only_entities = per_side / 2;
  gen.name_pool = per_side * 2;
  gen.street_pool = per_side * 3;
  gen.cities = 32;
  gen.speciality_pool = 128;
  gen.cuisines = 16;
  Result<GeneratedWorld> world = GenerateWorld(gen);
  EID_CHECK(world.ok());
  bench::RequireCleanWorld(
      "scaling_ilfd per_side=" + std::to_string(per_side), *world);
  ExtensionOptions options;
  options.threads = 1;
  options.compile = compile;
  double total_ms = 0;
  size_t iterations = 0;
  for (auto _ : state) {
    bench::CpuTimer timer;
    Result<ExtensionResult> rx =
        ExtendRelation(world->r, Side::kR, world->correspondence,
                       world->extended_key, world->ilfds, options);
    EID_CHECK(rx.ok());
    total_ms += timer.ElapsedMs();
    ++iterations;
    benchmark::DoNotOptimize(rx->extended.size());
  }
  bench::GlobalJson().Record(
      compile ? "extension_compiled" : "extension_interpreter", per_side,
      /*threads=*/1, total_ms * 1e6 / static_cast<double>(iterations));
}

void BM_ExtensionCompiled(benchmark::State& state) {
  RunExtensionEngine(state, /*compile=*/true);
}
void BM_ExtensionInterpreter(benchmark::State& state) {
  RunExtensionEngine(state, /*compile=*/false);
}
BENCHMARK(BM_ExtensionCompiled)->Arg(1024)->Arg(4096);
BENCHMARK(BM_ExtensionInterpreter)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace eid

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const std::string path = eid::bench::ScalingJsonPath();
  if (!eid::bench::GlobalJson().records().empty() &&
      !eid::bench::GlobalJson().WriteFile(path)) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  return 0;
}
