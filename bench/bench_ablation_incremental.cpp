// Experiment A1 — incremental maintenance vs batch recompute (ablation).
//
// The paper's federated setting (§2) requires re-identifying after every
// component update. This bench replays an insert/delete stream two ways:
//   * batch      — full EntityIdentifier::Identify after every update
//                  (what a naive integrator does);
//   * incremental— IncrementalIdentifier's per-update maintenance.
// Both end in the same matching table (verified); the incremental path's
// per-update cost stays flat while batch grows with the database size.

#include <cstdio>

#include "bench_util.h"
#include "eid.h"
#include "workload/generator.h"

using namespace eid;

namespace {

Relation EmptyLike(const Relation& model) {
  Relation out(model.name(), model.schema());
  for (const KeyDef& k : model.keys()) {
    std::vector<std::string> names;
    for (size_t i : k.attribute_indices) {
      names.push_back(model.schema().attribute(i).name);
    }
    EID_CHECK(out.DeclareKey(names).ok());
  }
  return out;
}

}  // namespace

int main() {
  bench::Banner("A1", "incremental maintenance vs batch recompute");

  std::printf("%-8s %16s %16s %9s\n", "size", "batch ms/update",
              "incr ms/update", "speedup");
  for (size_t per_side : {100, 200, 400, 800}) {
    GeneratorConfig gen;
    gen.seed = 11;
    gen.overlap_entities = per_side / 2;
    gen.r_only_entities = per_side / 2;
    gen.s_only_entities = per_side / 2;
    gen.name_pool = per_side * 2;
    gen.street_pool = per_side * 3;
    gen.cities = 16;
    gen.speciality_pool = 64;
    gen.cuisines = 8;
    gen.ilfd_coverage = 1.0;
    GeneratedWorld world = GenerateWorld(gen).value();
    bench::RequireCleanWorld(
        "ablation_incremental per_side=" + std::to_string(per_side), world);

    IdentifierConfig config;
    config.correspondence = world.correspondence;
    config.extended_key = world.extended_key;
    config.ilfds = world.ilfds;
    // The NMT is the quadratic part in both paths; keep the comparison
    // focused on matching maintenance.
    config.distinctness_from_ilfds = false;

    // Build up to 90% of the world, then measure updates of the last 10%.
    size_t preload_r = world.r.size() * 9 / 10;
    size_t preload_s = world.s.size() * 9 / 10;

    // --- incremental ---------------------------------------------------
    IncrementalIdentifier inc =
        IncrementalIdentifier::Create(config, EmptyLike(world.r),
                                      EmptyLike(world.s))
            .value();
    for (size_t i = 0; i < preload_r; ++i) {
      EID_CHECK(inc.InsertR(world.r.row(i)).ok());
    }
    for (size_t i = 0; i < preload_s; ++i) {
      EID_CHECK(inc.InsertS(world.s.row(i)).ok());
    }
    size_t updates = 0;
    bench::WallTimer inc_timer;
    for (size_t i = preload_r; i < world.r.size(); ++i, ++updates) {
      EID_CHECK(inc.InsertR(world.r.row(i)).ok());
      (void)inc.Partition();
    }
    for (size_t i = preload_s; i < world.s.size(); ++i, ++updates) {
      EID_CHECK(inc.InsertS(world.s.row(i)).ok());
      (void)inc.Partition();
    }
    double inc_ms = inc_timer.ElapsedMs() / updates;

    // --- batch ----------------------------------------------------------
    Relation batch_r = EmptyLike(world.r);
    Relation batch_s = EmptyLike(world.s);
    for (size_t i = 0; i < preload_r; ++i) {
      EID_CHECK(batch_r.Insert(world.r.row(i)).ok());
    }
    for (size_t i = 0; i < preload_s; ++i) {
      EID_CHECK(batch_s.Insert(world.s.row(i)).ok());
    }
    EntityIdentifier identifier(config);
    bench::WallTimer batch_timer;
    size_t batch_updates = 0;
    for (size_t i = preload_r; i < world.r.size(); ++i, ++batch_updates) {
      EID_CHECK(batch_r.Insert(world.r.row(i)).ok());
      EID_CHECK(identifier.Identify(batch_r, batch_s).ok());
    }
    for (size_t i = preload_s; i < world.s.size(); ++i, ++batch_updates) {
      EID_CHECK(batch_s.Insert(world.s.row(i)).ok());
      EID_CHECK(identifier.Identify(batch_r, batch_s).ok());
    }
    double batch_ms = batch_timer.ElapsedMs() / batch_updates;

    // --- equivalence ----------------------------------------------------
    IdentificationResult final_batch =
        identifier.Identify(batch_r, batch_s).value();
    Relation inc_mt = inc.MatchingRelation().value();
    Relation batch_mt = final_batch.MatchingRelation("MT").value();
    EID_CHECK(inc_mt.RowsEqualUnordered(batch_mt));

    std::printf("%-8zu %16.3f %16.3f %8.1fx\n", world.r.size(), batch_ms,
                inc_ms, batch_ms / inc_ms);
  }
  std::cout << "(final matching tables verified identical; expected shape: "
               "incremental per-update cost is flat, batch grows with the "
               "database)\n";
  return 0;
}
