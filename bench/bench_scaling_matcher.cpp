// Experiment S1 — matching-table construction scaling (google-benchmark).
//
// Sweeps |R| = |S| and compares:
//   * the direct pipeline (extension + hash join) — near-linear;
//   * the §4.2 relational-expression pipeline (IM-table joins) — also
//     hash-join based but with materialisation overhead per stage;
//   * a naive nested-loop pairwise matcher — quadratic.
//
// Absolute numbers are machine-dependent; the paper-relevant *shape* is
// that sound extended-key matching costs roughly a constant factor over a
// plain join, far from the quadratic pairwise comparison some §2.2
// baselines require.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "compile/pair_program.h"
#include "eid.h"
#include "exec/blocking_index.h"
#include "exec/candidate_generator.h"
#include "workload/generator.h"

namespace eid {
namespace {

GeneratedWorld MakeWorld(size_t per_side) {
  GeneratorConfig gen;
  gen.seed = 1234;
  gen.overlap_entities = per_side / 2;
  gen.r_only_entities = per_side / 2;
  gen.s_only_entities = per_side / 2;
  gen.name_pool = per_side * 2;
  gen.street_pool = per_side * 3;
  gen.cities = 32;
  gen.speciality_pool = 128;
  gen.cuisines = 16;
  gen.ilfd_coverage = 1.0;
  Result<GeneratedWorld> world = GenerateWorld(gen);
  EID_CHECK(world.ok());
  bench::RequireCleanWorld(
      "scaling_matcher per_side=" + std::to_string(per_side), *world);
  return std::move(world).value();
}

void BM_DirectMatcher(benchmark::State& state) {
  GeneratedWorld world = MakeWorld(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Result<MatcherResult> result =
        BuildMatchingTable(world.r, world.s, world.correspondence,
                           world.extended_key, world.ilfds);
    EID_CHECK(result.ok());
    benchmark::DoNotOptimize(result->matching.size());
  }
  state.SetComplexityN(state.range(0));
  state.counters["pairs_matched"] = static_cast<double>(world.truth.size());
}
BENCHMARK(BM_DirectMatcher)->Range(256, 8192)->Complexity(benchmark::oN);

void BM_AlgebraPipeline(benchmark::State& state) {
  GeneratedWorld world = MakeWorld(static_cast<size_t>(state.range(0)));
  Result<std::vector<IlfdTable>> tables =
      IlfdTable::Partition(world.ilfds.ilfds());
  EID_CHECK(tables.ok());
  for (auto _ : state) {
    Result<AlgebraPipelineResult> result = BuildMatchingTableAlgebraically(
        world.r, world.s, world.correspondence, world.extended_key, *tables);
    EID_CHECK(result.ok());
    benchmark::DoNotOptimize(result->matching.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AlgebraPipeline)->Range(256, 4096)->Complexity(benchmark::oN);

void BM_NaivePairwiseMatcher(benchmark::State& state) {
  GeneratedWorld world = MakeWorld(static_cast<size_t>(state.range(0)));
  // Extend once (shared cost), then measure the quadratic pair scan the
  // §2.2 pairwise techniques need.
  Result<ExtensionResult> rx =
      ExtendRelation(world.r, Side::kR, world.correspondence,
                     world.extended_key, world.ilfds);
  Result<ExtensionResult> sx =
      ExtendRelation(world.s, Side::kS, world.correspondence,
                     world.extended_key, world.ilfds);
  EID_CHECK(rx.ok() && sx.ok());
  const Relation& re = rx->extended;
  const Relation& se = sx->extended;
  std::vector<size_t> r_idx, s_idx;
  for (const std::string& a : world.extended_key.attributes()) {
    r_idx.push_back(*re.schema().IndexOf(a));
    s_idx.push_back(*se.schema().IndexOf(a));
  }
  for (auto _ : state) {
    size_t matches = 0;
    for (size_t i = 0; i < re.size(); ++i) {
      for (size_t j = 0; j < se.size(); ++j) {
        bool all = true;
        for (size_t k = 0; k < r_idx.size(); ++k) {
          if (!NonNullEq(re.row(i)[r_idx[k]], se.row(j)[s_idx[k]])) {
            all = false;
            break;
          }
        }
        if (all) ++matches;
      }
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NaivePairwiseMatcher)
    ->Range(256, 4096)
    ->Complexity(benchmark::oNSquared);

void BM_ExtensionOnly(benchmark::State& state) {
  GeneratedWorld world = MakeWorld(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Result<ExtensionResult> rx =
        ExtendRelation(world.r, Side::kR, world.correspondence,
                       world.extended_key, world.ilfds);
    EID_CHECK(rx.ok());
    benchmark::DoNotOptimize(rx->extended.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExtensionOnly)->Range(256, 8192)->Complexity(benchmark::oN);

void BM_IntegratedTable(benchmark::State& state) {
  GeneratedWorld world = MakeWorld(static_cast<size_t>(state.range(0)));
  Result<MatcherResult> matcher =
      BuildMatchingTable(world.r, world.s, world.correspondence,
                         world.extended_key, world.ilfds);
  EID_CHECK(matcher.ok());
  IdentificationResult assembled;
  assembled.r_extended = std::move(matcher->r_extension.extended);
  assembled.s_extended = std::move(matcher->s_extension.extended);
  assembled.matching = std::move(matcher->matching);
  for (auto _ : state) {
    Result<Relation> t =
        BuildIntegratedTable(assembled, IntegrationLayout::kMerged);
    EID_CHECK(t.ok());
    benchmark::DoNotOptimize(t->size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IntegratedTable)->Range(256, 8192)->Complexity(benchmark::oN);

// --- Thread sweeps (exec layer) -----------------------------------------
// ns/op per (n, threads) lands in BENCH_scaling.json via the custom main.

void BM_ParallelMatcher(benchmark::State& state) {
  GeneratedWorld world = MakeWorld(static_cast<size_t>(state.range(0)));
  MatcherOptions options;
  options.threads = static_cast<int>(state.range(1));
  double total_ms = 0;
  size_t iterations = 0;
  bench::ColumnarCounters columnar;
  for (auto _ : state) {
    bench::WallTimer timer;
    Result<MatcherResult> result =
        BuildMatchingTable(world.r, world.s, world.correspondence,
                           world.extended_key, world.ilfds, options);
    EID_CHECK(result.ok());
    total_ms += timer.ElapsedMs();
    ++iterations;
    columnar = bench::ColumnarCounters::Sum(result->stats.stages());
    benchmark::DoNotOptimize(result->matching.size());
  }
  state.counters["threads"] = static_cast<double>(options.threads);
  bench::GlobalJson().Record("matcher", static_cast<size_t>(state.range(0)),
                             options.threads,
                             total_ms * 1e6 / static_cast<double>(iterations),
                             columnar);
}
BENCHMARK(BM_ParallelMatcher)
    ->ArgsProduct({{1024, 4096}, {1, 2, 4, 8}});

/// Sums the pair-sweep counters (identity + distinctness stages) of one
/// identification run, including the block-evaluator pair when the block
/// path ran (zero under MatcherOptions::block_eval = false).
void SumPairSweep(const IdentificationResult& result, size_t* candidate_pairs,
                  size_t* cross_product, size_t* pair_blocks = nullptr,
                  size_t* block_early_exits = nullptr) {
  *candidate_pairs = 0;
  *cross_product = 0;
  if (pair_blocks != nullptr) *pair_blocks = 0;
  if (block_early_exits != nullptr) *block_early_exits = 0;
  for (const exec::StageStats& stage : result.stats.stages()) {
    if (stage.stage == "identity_rules" ||
        stage.stage == "distinctness_rules") {
      *candidate_pairs += stage.candidate_pairs;
      *cross_product += stage.cross_product;
      if (pair_blocks != nullptr) *pair_blocks += stage.pair_blocks;
      if (block_early_exits != nullptr) {
        *block_early_exits += stage.block_early_exits;
      }
    }
  }
}

void BM_ParallelIdentify(benchmark::State& state) {
  GeneratedWorld world = MakeWorld(static_cast<size_t>(state.range(0)));
  IdentifierConfig config;
  config.correspondence = world.correspondence;
  config.extended_key = world.extended_key;
  config.ilfds = world.ilfds;
  config.distinctness_from_ilfds = true;
  config.matcher_options.threads = static_cast<int>(state.range(1));
  EntityIdentifier identifier(config);
  double total_ms = 0;
  size_t iterations = 0;
  size_t candidate_pairs = 0, cross_product = 0;
  size_t pair_blocks = 0, block_early_exits = 0;
  for (auto _ : state) {
    bench::WallTimer timer;
    Result<IdentificationResult> result = identifier.Identify(world.r,
                                                              world.s);
    EID_CHECK(result.ok());
    total_ms += timer.ElapsedMs();
    ++iterations;
    SumPairSweep(*result, &candidate_pairs, &cross_product, &pair_blocks,
                 &block_early_exits);
    benchmark::DoNotOptimize(result->partition.undetermined);
  }
  state.counters["threads"] =
      static_cast<double>(config.matcher_options.threads);
  state.counters["candidate_pairs"] = static_cast<double>(candidate_pairs);
  bench::GlobalJson().Record("identify", static_cast<size_t>(state.range(0)),
                             config.matcher_options.threads,
                             total_ms * 1e6 / static_cast<double>(iterations),
                             candidate_pairs, cross_product, pair_blocks,
                             block_early_exits);
}
// Identify sweeps the full Prop-1 distinctness rule set (one rule per
// covered entity) and materialises the complete NMT — the NMT itself is
// Θ(n²) output, which caps this fixture's n.
BENCHMARK(BM_ParallelIdentify)
    ->ArgsProduct({{1024, 4096}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_ParallelIdentifyScalar(benchmark::State& state) {
  // The same dense fixture with block_eval off: one scalar PairTruth
  // call per surviving candidate. End-to-end price reference for the
  // block path; dense identify is dominated by NMT materialisation, so
  // the >= 1.5x evaluator gate in bench.sh reads the residual_* rows
  // (BM_ResidualSweep*), where the evaluator is the whole measurement.
  GeneratedWorld world = MakeWorld(static_cast<size_t>(state.range(0)));
  IdentifierConfig config;
  config.correspondence = world.correspondence;
  config.extended_key = world.extended_key;
  config.ilfds = world.ilfds;
  config.distinctness_from_ilfds = true;
  config.matcher_options.threads = static_cast<int>(state.range(1));
  config.matcher_options.block_eval = false;
  EntityIdentifier identifier(config);
  double total_ms = 0;
  size_t iterations = 0;
  size_t candidate_pairs = 0, cross_product = 0;
  for (auto _ : state) {
    bench::WallTimer timer;
    Result<IdentificationResult> result = identifier.Identify(world.r,
                                                              world.s);
    EID_CHECK(result.ok());
    total_ms += timer.ElapsedMs();
    ++iterations;
    SumPairSweep(*result, &candidate_pairs, &cross_product);
    benchmark::DoNotOptimize(result->partition.undetermined);
  }
  state.counters["threads"] =
      static_cast<double>(config.matcher_options.threads);
  state.counters["candidate_pairs"] = static_cast<double>(candidate_pairs);
  bench::GlobalJson().Record("identify_scalar",
                             static_cast<size_t>(state.range(0)),
                             config.matcher_options.threads,
                             total_ms * 1e6 / static_cast<double>(iterations),
                             candidate_pairs, cross_product);
}
BENCHMARK(BM_ParallelIdentifyScalar)
    ->ArgsProduct({{4096}, {1}})
    ->Unit(benchmark::kMillisecond);

// --- Residual-evaluator comparison: block vs scalar ---------------------
// Times the residual pair evaluators themselves — PairTruthBlock in
// full 256-lane blocks vs the scalar virtual PairTruth per candidate —
// over an identical dense candidate stream, outside the candidate
// generator (whose probe/stamp/emission bookkeeping is common to both
// paths and would dilute the ratio the gate protects). kNe conjuncts
// are never blocking joins, so every conjunct of every rule stays in
// the residual program. bench.sh gates residual_block vs
// residual_scalar at >= 1.5x from these rows.
/// A relation whose two payload columns draw from small pools, mixed by
/// a fixed multiplicative hash — kNe conjuncts over them are residual
/// (never blocking joins) and mostly true, so the sweep's cost is pair
/// evaluation, not candidate discovery or NMT size.
Relation ResidualSide(const char* name, size_t n, uint64_t salt) {
  Relation rel(name, Schema::OfStrings({"a", "b", "c", "d"}));
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = (i + salt) * 0x9E3779B97F4A7C15ull;
    Status st = rel.InsertText({"a" + std::to_string(h % 61),
                                "b" + std::to_string((h >> 16) % 59),
                                "c" + std::to_string((h >> 32) % 53),
                                "d" + std::to_string((h >> 48) % 47)});
    EID_CHECK(st.ok());
  }
  return rel;
}

void ResidualSweep(benchmark::State& state, bool block_eval,
                   const char* record_name) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Relation r = ResidualSide("R", n, 1);
  const Relation s = ResidualSide("S", n, 2);
  std::vector<std::vector<Predicate>> rules;
  for (const char* text :
       {"e1.a != e2.a & e1.b != e2.b & e1.c != e2.c & e1.d != e2.d",
        "e1.d != e2.d & e1.c != e2.c & e1.b != e2.b & e1.a != e2.a"}) {
    Result<std::vector<Predicate>> preds = ParsePredicateConjunction(text);
    EID_CHECK(preds.ok());
    rules.push_back(*preds);
  }
  std::vector<exec::BlockingPlan> plans;
  for (const std::vector<Predicate>& preds : rules) {
    for (bool flipped : {false, true}) {
      plans.push_back(
          exec::PlanBlocking(preds, r.schema(), s.schema(), flipped));
    }
  }
  compile::PairFeatureCache features(&r, &s);
  std::vector<std::unique_ptr<exec::StagedEvaluator>> evaluators(
      plans.size());
  for (size_t k = 0; k < rules.size(); ++k) {
    for (bool flipped : {false, true}) {
      const size_t i = k * 2 + (flipped ? 1 : 0);
      if (plans[i].impossible) continue;
      evaluators[i] = std::make_unique<compile::StagedConjunction>(
          compile::StagedConjunction::Compile(rules[k], plans[i].coverage,
                                              r, s, flipped, &features));
    }
  }
  double total_ms = 0;
  size_t iterations = 0;
  size_t candidate_pairs = 0;
  const size_t cross_product = r.size() * s.size();
  size_t pair_blocks = 0, block_early_exits = 0;
  for (auto _ : state) {
    size_t true_lanes = 0;
    size_t pairs = 0, blocks = 0, early_exits = 0;
    bench::CpuTimer timer;
    for (const std::unique_ptr<exec::StagedEvaluator>& ev : evaluators) {
      if (ev == nullptr) continue;
      if (block_eval) {
        size_t r_blk[exec::kPairBlockLanes];
        size_t s_blk[exec::kPairBlockLanes];
        Truth out[exec::kPairBlockLanes];
        size_t lanes = 0;
        auto drain = [&] {
          exec::PairBlockStats bs;
          ev->PairTruthBlock(r_blk, s_blk, lanes, out, &bs);
          for (size_t i = 0; i < lanes; ++i) {
            true_lanes += out[i] == Truth::kTrue ? 1 : 0;
          }
          pairs += lanes;
          ++blocks;
          early_exits += bs.early_exits;
          lanes = 0;
        };
        for (size_t i = 0; i < r.size(); ++i) {
          for (size_t j = 0; j < s.size(); ++j) {
            r_blk[lanes] = i;
            s_blk[lanes] = j;
            if (++lanes == exec::kPairBlockLanes) drain();
          }
        }
        if (lanes > 0) drain();
      } else {
        for (size_t i = 0; i < r.size(); ++i) {
          for (size_t j = 0; j < s.size(); ++j) {
            true_lanes += ev->PairTruth(i, j) == Truth::kTrue ? 1 : 0;
            ++pairs;
          }
        }
      }
    }
    total_ms += timer.ElapsedMs();
    ++iterations;
    candidate_pairs = pairs;
    pair_blocks = blocks;
    block_early_exits = early_exits;
    benchmark::DoNotOptimize(true_lanes);
  }
  state.counters["candidate_pairs"] = static_cast<double>(candidate_pairs);
  bench::GlobalJson().Record(record_name, n, 1,
                             total_ms * 1e6 / static_cast<double>(iterations),
                             candidate_pairs, cross_product, pair_blocks,
                             block_early_exits);
}

void BM_ResidualSweepBlock(benchmark::State& state) {
  ResidualSweep(state, /*block_eval=*/true, "residual_block");
}
void BM_ResidualSweepScalar(benchmark::State& state) {
  ResidualSweep(state, /*block_eval=*/false, "residual_scalar");
}
BENCHMARK(BM_ResidualSweepBlock)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ResidualSweepScalar)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_ParallelIdentifyBlocked(benchmark::State& state) {
  // Selective join rules instead of the Θ(n²)-output Prop-1 NMT: every
  // rule blocks on a near-unique name, so both output and — through the
  // staged candidate generator — work stay near-linear, which is what
  // lets n reach 65536. CPU time (not wall) is recorded; see CpuTimer.
  GeneratedWorld world = MakeWorld(static_cast<size_t>(state.range(0)));
  IdentifierConfig config;
  config.correspondence = world.correspondence;
  config.extended_key = world.extended_key;
  config.ilfds = world.ilfds;
  Result<IdentityRule> identity = ParseIdentityRule(
      "name_spec_eq", "e1.name = e2.name & e1.speciality = e2.speciality");
  EID_CHECK(identity.ok());
  config.identity_rules.push_back(*identity);
  Result<DistinctnessRule> distinct = ParseDistinctnessRule(
      "same_name_other_spec",
      "e1.name = e2.name & e1.speciality != e2.speciality");
  EID_CHECK(distinct.ok());
  config.distinctness_rules.push_back(*distinct);
  config.distinctness_from_ilfds = false;
  config.matcher_options.threads = static_cast<int>(state.range(1));
  EntityIdentifier identifier(config);
  double total_ms = 0;
  size_t iterations = 0;
  size_t candidate_pairs = 0, cross_product = 0;
  for (auto _ : state) {
    bench::CpuTimer timer;
    Result<IdentificationResult> result = identifier.Identify(world.r,
                                                              world.s);
    EID_CHECK(result.ok());
    total_ms += timer.ElapsedMs();
    ++iterations;
    SumPairSweep(*result, &candidate_pairs, &cross_product);
    // Quadratic-fallback guard: if blocking collapses, the bench itself
    // fails loudly instead of quietly recording a quadratic sweep.
    EID_CHECK(candidate_pairs < cross_product);
    benchmark::DoNotOptimize(result->partition.undetermined);
  }
  state.counters["threads"] =
      static_cast<double>(config.matcher_options.threads);
  state.counters["candidate_pairs"] = static_cast<double>(candidate_pairs);
  bench::GlobalJson().Record("identify_blocked",
                             static_cast<size_t>(state.range(0)),
                             config.matcher_options.threads,
                             total_ms * 1e6 / static_cast<double>(iterations),
                             candidate_pairs, cross_product);
}
BENCHMARK(BM_ParallelIdentifyBlocked)
    ->ArgsProduct({{4096, 16384, 65536}, {1, 8}})
    ->Unit(benchmark::kMillisecond);

// --- Engine comparison: compiled path vs per-tuple interpreter ----------
// Full matching-table build, single-threaded, CPU time (see README
// "Performance"): derivation programs + memos in extension plus the
// interned extended-key join, against the string-fingerprint interpreter.

void RunMatcherEngine(benchmark::State& state, bool compile) {
  GeneratedWorld world = MakeWorld(static_cast<size_t>(state.range(0)));
  MatcherOptions options;
  options.threads = 1;
  options.compile = compile;
  double total_ms = 0;
  size_t iterations = 0;
  bench::ColumnarCounters columnar;
  for (auto _ : state) {
    bench::CpuTimer timer;
    Result<MatcherResult> result =
        BuildMatchingTable(world.r, world.s, world.correspondence,
                           world.extended_key, world.ilfds, options);
    EID_CHECK(result.ok());
    total_ms += timer.ElapsedMs();
    ++iterations;
    columnar = bench::ColumnarCounters::Sum(result->stats.stages());
    benchmark::DoNotOptimize(result->matching.size());
  }
  const double ns_op = total_ms * 1e6 / static_cast<double>(iterations);
  const std::string name =
      compile ? "matcher_compiled" : "matcher_interpreter";
  if (compile) {
    // The interpreter row stays in the plain form: its engine never
    // touches the columnar world, so zero counters would only mislead.
    bench::GlobalJson().Record(name, static_cast<size_t>(state.range(0)),
                               /*threads=*/1, ns_op, columnar);
  } else {
    bench::GlobalJson().Record(name, static_cast<size_t>(state.range(0)),
                               /*threads=*/1, ns_op);
  }
}

void BM_MatcherCompiled(benchmark::State& state) {
  RunMatcherEngine(state, /*compile=*/true);
}
void BM_MatcherInterpreter(benchmark::State& state) {
  RunMatcherEngine(state, /*compile=*/false);
}
BENCHMARK(BM_MatcherCompiled)->Arg(1024)->Arg(4096);
BENCHMARK(BM_MatcherInterpreter)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace eid

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const std::string path = eid::bench::ScalingJsonPath();
  if (!eid::bench::GlobalJson().records().empty() &&
      !eid::bench::GlobalJson().WriteFile(path)) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  return 0;
}
