// Experiment S3 — the §2.2 techniques vs the paper's, on common ground.
//
// Generated worlds with controlled homonym pressure (name-pool size) and
// knowledge coverage. Scored on ground truth: precision, recall,
// soundness violations (false matches / false non-matches), undetermined
// rate, applicability.
//
// Expected shape (the paper's qualitative claims):
//   * key equivalence — NOT APPLICABLE (R and S share no candidate key);
//   * probabilistic key equivalence — not applicable either (same reason);
//   * probabilistic attribute equivalence — decides many pairs but admits
//     false matches once homonyms exist (Fig. 2's failure at scale);
//   * heuristic same-name rules — high recall, unsound under homonyms;
//   * user-specified — perfectly sound, but the user supplies every pair;
//   * extended key + ILFD — sound at every setting; recall equals the
//     knowledge coverage.

#include <cstdio>

#include "baselines/heuristic_rules.h"
#include "baselines/ilfd_technique.h"
#include "baselines/key_equivalence.h"
#include "baselines/probabilistic_attr.h"
#include "baselines/probabilistic_key.h"
#include "baselines/user_specified.h"
#include "bench_util.h"
#include "eid.h"
#include "workload/generator.h"

using namespace eid;

namespace {

void Report(const std::string& name, const Result<BaselineResult>& outcome,
            const GeneratedWorld& world) {
  if (!outcome.ok()) {
    std::printf("  %-26s ERROR: %s\n", name.c_str(),
                outcome.status().ToString().c_str());
    return;
  }
  if (!outcome->applicability.ok() && outcome->matching.empty() &&
      outcome->negative.empty()) {
    std::printf("  %-26s NOT APPLICABLE (%s)\n", name.c_str(),
                StatusCodeName(outcome->applicability.code()));
    return;
  }
  MatchQuality q =
      Evaluate(*outcome, world.truth, world.r.size(), world.s.size());
  std::printf(
      "  %-26s prec %5.3f  recall %5.3f  false+ %4zu  false- %4zu  "
      "undet %5.1f%%  sound %s\n",
      name.c_str(), q.Precision(), q.Recall(), q.false_matches,
      q.false_non_matches, 100.0 * q.UndeterminedRate(),
      q.Sound() ? "yes" : "NO");
}

void RunSetting(uint64_t seed, size_t name_pool, double coverage) {
  GeneratorConfig gen;
  gen.seed = seed;
  gen.overlap_entities = 120;
  gen.r_only_entities = 60;
  gen.s_only_entities = 60;
  gen.name_pool = name_pool;
  gen.street_pool = 700;
  gen.cities = 16;
  gen.speciality_pool = 48;
  gen.cuisines = 8;
  gen.ilfd_coverage = coverage;
  GeneratedWorld world = GenerateWorld(gen).value();
  bench::RequireCleanWorld("baseline name_pool=" + std::to_string(name_pool) +
                               " coverage=" + std::to_string(coverage),
                           world);

  std::printf("\nname_pool=%zu (homonym pressure %s), ILFD coverage %.0f%%\n",
              name_pool, name_pool <= 120 ? "HIGH" : "low", 100 * coverage);

  // 1. Key equivalence.
  Report("key-equivalence",
         KeyEquivalenceMatcher(world.correspondence).Match(world.r, world.s),
         world);

  // 2. User-specified equivalence: the user asserts every true pair.
  {
    std::vector<UserEquivalence> assertions;
    for (const TuplePair& p : world.truth) {
      assertions.push_back(UserEquivalence{world.r.PrimaryKeyOf(p.r_index),
                                           world.s.PrimaryKeyOf(p.s_index)});
    }
    Report("user-specified",
           UserSpecifiedMatcher(assertions).Match(world.r, world.s), world);
  }

  // 3. Probabilistic key equivalence.
  Report("probabilistic-key",
         ProbabilisticKeyMatcher(world.correspondence).Match(world.r, world.s),
         world);

  // 4. Probabilistic attribute equivalence (threshold 1.0 = all common
  //    attributes agree; `name` is the only common attribute here).
  Report("probabilistic-attribute",
         ProbabilisticAttrMatcher(world.correspondence)
             .Match(world.r, world.s),
         world);

  // 5. Heuristic rules: same name => same entity.
  Report("heuristic-rules",
         HeuristicRuleMatcher(
             world.correspondence,
             {IdentityRule::KeyEquivalence("same-name", {"name"})})
             .Match(world.r, world.s),
         world);

  // 6. The paper's technique.
  {
    IdentifierConfig config;
    config.correspondence = world.correspondence;
    config.extended_key = world.extended_key;
    config.ilfds = world.ilfds;
    Report("extended-key+ilfd",
           IlfdTechniqueMatcher(config).Match(world.r, world.s), world);
  }
}

}  // namespace

int main() {
  bench::Banner("S3", "baseline comparison on generated ground truth");
  std::printf("world: 120 overlapping + 60/60 private entities; R and S "
              "share only `name`\n");
  RunSetting(/*seed=*/17, /*name_pool=*/1200, /*coverage=*/1.0);
  RunSetting(/*seed=*/17, /*name_pool=*/120, /*coverage=*/1.0);
  RunSetting(/*seed=*/17, /*name_pool=*/120, /*coverage=*/0.5);
  std::printf(
      "\n(expected shape: only user-specified and extended-key+ilfd stay "
      "sound under homonym pressure; the latter's recall tracks ILFD "
      "coverage; key-based baselines are inapplicable without a common "
      "candidate key)\n");
  return 0;
}
