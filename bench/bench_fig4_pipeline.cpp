// Experiment F4 — Figure 4: entity identification using ILFD tables,
// end-to-end with per-stage wall-clock timing.
//
// The paper's architecture: source relations + ILFD tables feed the
// entity-identification process, which derives extended keys, builds
// MT_RS, and emits the integrated table T_RS. This bench runs each stage
// on a mid-size generated world and reports the per-stage cost breakdown.

#include <cstdio>

#include "bench_util.h"
#include "eid.h"
#include "workload/generator.h"

using namespace eid;

int main() {
  bench::Banner("F4", "Figure 4 — the pipeline, stage by stage");

  GeneratorConfig gen;
  gen.seed = 31;
  gen.overlap_entities = 2000;
  gen.r_only_entities = 1000;
  gen.s_only_entities = 1000;
  gen.name_pool = 3000;
  gen.street_pool = 6000;
  gen.cities = 64;
  gen.speciality_pool = 256;
  gen.cuisines = 24;
  gen.ilfd_coverage = 1.0;

  bench::WallTimer total;
  bench::WallTimer t_gen;
  GeneratedWorld world = GenerateWorld(gen).value();
  double ms_gen = t_gen.ElapsedMs();
  bench::RequireCleanWorld("fig4 pipeline", world);
  std::cout << "world: |R| = " << world.r.size() << ", |S| = "
            << world.s.size() << ", ILFDs = " << world.ilfds.size() << "\n\n";

  // Stage 1: ILFD tables from the ILFD set (Fig. 4's "ILFD tables" input).
  bench::WallTimer t_tables;
  std::vector<IlfdTable> tables =
      IlfdTable::Partition(world.ilfds.ilfds()).value();
  double ms_tables = t_tables.ElapsedMs();

  // Stage 2: extension R -> R', S -> S'.
  bench::WallTimer t_extend;
  ExtensionResult rx = ExtendRelation(world.r, Side::kR, world.correspondence,
                                      world.extended_key, world.ilfds)
                           .value();
  ExtensionResult sx = ExtendRelation(world.s, Side::kS, world.correspondence,
                                      world.extended_key, world.ilfds)
                           .value();
  double ms_extend = t_extend.ElapsedMs();

  // Stage 3: extended-key join -> MT_RS.
  bench::WallTimer t_join;
  std::vector<TuplePair> pairs =
      JoinOnExtendedKey(rx.extended, sx.extended, world.extended_key).value();
  MatchTable mt;
  Status uniqueness = Status::Ok();
  for (const TuplePair& p : pairs) {
    Status st = mt.Add(p);
    if (!st.ok() && uniqueness.ok()) uniqueness = st;
  }
  double ms_join = t_join.ElapsedMs();

  // Stage 4: integrated table T_RS.
  bench::WallTimer t_integrate;
  IdentificationResult assembled;
  assembled.r_extended = std::move(rx.extended);
  assembled.s_extended = std::move(sx.extended);
  assembled.matching = std::move(mt);
  Relation t_rs =
      BuildIntegratedTable(assembled, IntegrationLayout::kMerged).value();
  double ms_integrate = t_integrate.ElapsedMs();

  double ms_total = total.ElapsedMs();
  std::printf("%-34s %10s\n", "stage", "ms");
  std::printf("%-34s %10.2f\n", "generate world (not in Fig. 4)", ms_gen);
  std::printf("%-34s %10.2f\n", "build ILFD tables", ms_tables);
  std::printf("%-34s %10.2f\n", "extend R, S (ILFD derivation)", ms_extend);
  std::printf("%-34s %10.2f\n", "extended-key join -> MT_RS", ms_join);
  std::printf("%-34s %10.2f\n", "integrate -> T_RS", ms_integrate);
  std::printf("%-34s %10.2f\n", "total", ms_total);

  std::cout << "\nMT_RS pairs: " << assembled.matching.size()
            << " (ground truth " << world.truth.size() << ")"
            << "   uniqueness: " << uniqueness.ToString() << "\n"
            << "T_RS rows: " << t_rs.size() << " (matched once + unmatched "
            << "from each side)\n"
            << "(expected shape: derivation dominates; join and integration "
               "are hash-based and near-linear)\n";
  return 0;
}
