// Experiment T2–T4 — Example 2: Tables 2, 3 and 4.
//
// Paper artefacts regenerated here:
//   Table 2 — source relations R and S (no common candidate key);
//   Table 3 — MT_RS after the Mughalai→Indian ILFD derives S.cuisine;
//   Table 4 — NMT_RS from the ILFD's Proposition 1 distinctness rule.

#include "bench_util.h"
#include "eid.h"
#include "workload/fixtures.h"

using namespace eid;

int main() {
  bench::Banner("T2-T4", "Example 2 — extended-key matching with one ILFD");

  Relation r = fixtures::Example2R();
  Relation s = fixtures::Example2S();
  PrintOptions opts;
  opts.sort_rows = false;
  opts.title = "Table 2: R  (key: name, cuisine)";
  PrintTable(std::cout, r, opts);
  std::cout << "\n";
  opts.title = "Table 2: S  (key: name)";
  PrintTable(std::cout, s, opts);

  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example2ExtendedKey();
  config.ilfds = fixtures::Example2Ilfds();
  bench::RequireCleanRuleProgram("example2", r, s, config);
  std::cout << "\nextended key: " << config.extended_key->ToString()
            << "\nILFD: " << config.ilfds.ilfd(0).ToString() << "\n";

  EntityIdentifier identifier(config);
  IdentificationResult result = identifier.Identify(r, s).value();

  bench::Section("Table 3 — matching table MT_RS");
  PrintOptions mt;
  mt.title = "MT_RS";
  PrintTable(std::cout, result.MatchingRelation().value(), mt);
  std::cout << "(paper Table 3: TwinCities | Indian | TwinCities)\n";

  bench::Section("Table 4 — negative matching table NMT_RS");
  mt.title = "NMT_RS";
  PrintTable(std::cout, result.NegativeRelation().value(), mt);
  std::cout << "(paper Table 4: TwinCities | Chinese | TwinCities)\n";

  bench::Section("Proposition 1 round trip");
  Ilfd ilfd = config.ilfds.ilfd(0);
  DistinctnessRule induced = DistinctnessRuleFromIlfd(ilfd).value();
  std::cout << "ILFD:              " << ilfd.ToString() << "\n"
            << "distinctness rule: " << induced.ToString() << "\n"
            << "recovered ILFD:    "
            << IlfdFromDistinctnessRule(induced).value().ToString() << "\n";

  std::cout << "\nsoundness verdicts: uniqueness="
            << result.uniqueness.ToString()
            << ", consistency=" << result.consistency.ToString() << "\n";
  return 0;
}
