// Experiment A2 — derivation-order ablation: the prototype's first-match
// (Prolog cut) semantics vs exhaustive derivation with conflict detection.
//
// The paper's prototype commits to the first ILFD whose body succeeds;
// under its assumption that all knowledge is consistent this is harmless —
// the two modes agree (verified on clean worlds, part 1). The hazard is
// *conflicting knowledge*: two ILFDs deriving different values for one
// attribute. The cut silently takes whichever is declared first, and when
// the wrong one wins, the resulting extended tuple can join with the wrong
// partner — an unsound match. Exhaustive derivation sees both rules fire
// and reacts per policy:
//   * kError   — reject the input, naming the conflicting ILFDs;
//   * kNullOut — drop the contested value: the tuple stays undetermined
//                (sound, recall traded for safety).
//
// Part 2 engineers such conflicts: for same-name entity pairs (A, B), a
// wrong rule (A.name ∧ A.street → speciality = B.speciality) is declared
// *before* the true one, so the cut believes it and matches A's tuple to
// B's — measured as unsound matches.

#include <cstdio>

#include "bench_util.h"
#include "eid.h"
#include "workload/generator.h"

using namespace eid;

namespace {

size_t CountFalseMatches(const IdentificationResult& result,
                         const std::vector<TuplePair>& truth) {
  size_t wrong = 0;
  for (const TuplePair& p : result.matching.pairs()) {
    bool is_true = false;
    for (const TuplePair& t : truth) {
      if (t == p) {
        is_true = true;
        break;
      }
    }
    if (!is_true) ++wrong;
  }
  return wrong;
}

/// Builds an ILFD set with `bad` rules (declared first, so the cut
/// prefers them) followed by the world's true knowledge.
IlfdSet WithConflicts(const GeneratedWorld& world, size_t max_conflicts,
                      size_t* injected) {
  // Same-name overlap-entity pairs: entity universe rows share layout
  // [0, overlap) = in both relations.
  const Relation& u = world.universe;
  size_t name_idx = *u.schema().IndexOf("name");
  size_t street_idx = *u.schema().IndexOf("street");
  size_t spec_idx = *u.schema().IndexOf("speciality");

  IlfdSet bad_first;
  *injected = 0;
  for (size_t a = 0; a < world.truth.size() && *injected < max_conflicts;
       ++a) {
    for (size_t b = 0; b < world.truth.size(); ++b) {
      if (a == b) continue;
      if (!(u.row(a)[name_idx] == u.row(b)[name_idx])) continue;
      // Wrong rule: A's (name, street) derives B's speciality.
      bad_first.Add(Ilfd::Implies(
          {Atom{"name", u.row(a)[name_idx]},
           Atom{"street", u.row(a)[street_idx]}},
          Atom{"speciality", u.row(b)[spec_idx]}));
      ++*injected;
      break;
    }
  }
  for (const Ilfd& f : world.ilfds.ilfds()) bad_first.Add(f);
  return bad_first;
}

}  // namespace

int main() {
  bench::Banner("A2", "first-match (cut) vs exhaustive derivation");

  GeneratorConfig gen;
  gen.seed = 13;
  gen.overlap_entities = 200;
  gen.r_only_entities = 100;
  gen.s_only_entities = 100;
  gen.name_pool = 120;  // same-name pairs guaranteed
  gen.street_pool = 1200;
  gen.cities = 16;
  gen.speciality_pool = 64;
  gen.cuisines = 8;
  gen.ilfd_coverage = 1.0;
  GeneratedWorld world = GenerateWorld(gen).value();
  bench::RequireCleanWorld("ablation_derivation base", world);

  bench::Section("part 1 — clean knowledge: the two modes agree");
  {
    IdentifierConfig config;
    config.correspondence = world.correspondence;
    config.extended_key = world.extended_key;
    config.ilfds = world.ilfds;
    EntityIdentifier exhaustive(config);
    config.matcher_options.extension.derivation.mode =
        DerivationMode::kFirstMatch;
    EntityIdentifier first_match(config);

    bench::WallTimer t1;
    IdentificationResult a = exhaustive.Identify(world.r, world.s).value();
    double ms_ex = t1.ElapsedMs();
    bench::WallTimer t2;
    IdentificationResult b = first_match.Identify(world.r, world.s).value();
    double ms_fm = t2.ElapsedMs();
    std::printf("exhaustive: %zu matches (%.1f ms); first-match: %zu "
                "matches (%.1f ms); identical: %s; unsound: %zu / %zu\n",
                a.matching.size(), ms_ex, b.matching.size(), ms_fm,
                a.matching.size() == b.matching.size() ? "yes" : "NO",
                CountFalseMatches(a, world.truth),
                CountFalseMatches(b, world.truth));
  }

  bench::Section("part 2 — conflicting knowledge (wrong rule declared first)");
  std::printf("%-10s %26s %22s %26s\n", "conflicts", "first-match",
              "exhaustive/kError", "exhaustive/kNullOut");
  for (size_t want : {4u, 12u, 24u}) {
    size_t injected = 0;
    IlfdSet conflicted = WithConflicts(world, want, &injected);

    IdentifierConfig config;
    config.correspondence = world.correspondence;
    config.extended_key = world.extended_key;
    config.ilfds = conflicted;

    // Sanity: the injected conflicts are exactly what eid-lint's closure
    // check exists to catch — the analyzer must flag this set as
    // contradictory (EID-E003) while the base world above linted clean.
    {
      analysis::AnalysisReport report =
          analysis::AnalyzeRuleProgram(world.r, world.s, config);
      EID_CHECK(report.HasCode("EID-E003"));
    }
    config.distinctness_from_ilfds = false;  // isolate derivation effects

    config.matcher_options.extension.derivation.mode =
        DerivationMode::kFirstMatch;
    IdentificationResult fm =
        EntityIdentifier(config).Identify(world.r, world.s).value();
    std::string fm_report =
        std::to_string(fm.matching.size()) + " matches, " +
        std::to_string(CountFalseMatches(fm, world.truth)) + " UNSOUND";

    config.matcher_options.extension.derivation.mode =
        DerivationMode::kExhaustive;
    config.matcher_options.extension.derivation.conflict_policy =
        ConflictPolicy::kError;
    Result<IdentificationResult> err =
        EntityIdentifier(config).Identify(world.r, world.s);
    std::string err_report =
        err.ok() ? "accepted (?)"
                 : std::string("rejected (") +
                       StatusCodeName(err.status().code()) + ")";

    config.matcher_options.extension.derivation.conflict_policy =
        ConflictPolicy::kNullOut;
    IdentificationResult nullout =
        EntityIdentifier(config).Identify(world.r, world.s).value();
    std::string null_report =
        std::to_string(nullout.matching.size()) + " matches, " +
        std::to_string(CountFalseMatches(nullout, world.truth)) +
        " unsound";

    std::printf("%-10zu %26s %22s %26s\n", injected, fm_report.c_str(),
                err_report.c_str(), null_report.c_str());
  }
  std::cout <<
      "(expected shape: the cut turns each conflict the wrong rule wins "
      "into an unsound match; kError refuses the knowledge base; kNullOut "
      "keeps every accepted match sound and loses only the contested "
      "tuples)\n";
  return 0;
}
