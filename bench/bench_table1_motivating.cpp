// Experiment T1 — Table 1 / Example 1: the motivating ambiguity.
//
// Paper claim: matching on the common key attribute `name` "may suggest"
// the first tuples match, but after inserting (VillageWok, Penn.Ave.) one
// S tuple has two R candidates, so name matching is not sound; with the
// integrated-world knowledge (extended key {name, street, city} + two
// ILFDs) the right pair is identified and the insertion is harmless.

#include "bench_util.h"
#include "eid.h"
#include "workload/fixtures.h"

using namespace eid;

namespace {

size_t AmbiguousSTuples(const Relation& r, const Relation& s) {
  size_t ambiguous = 0;
  for (size_t j = 0; j < s.size(); ++j) {
    size_t hits = 0;
    for (size_t i = 0; i < r.size(); ++i) {
      if (r.tuple(i).GetOrNull("name") == s.tuple(j).GetOrNull("name")) {
        ++hits;
      }
    }
    if (hits > 1) ++ambiguous;
  }
  return ambiguous;
}

}  // namespace

int main() {
  bench::Banner("T1", "Table 1 / Example 1 — motivating ambiguity");

  Relation r = fixtures::Table1R();
  Relation s = fixtures::Table1S();
  PrintOptions opts;
  opts.sort_rows = false;
  opts.title = "R  (key: name, street)";
  PrintTable(std::cout, r, opts);
  std::cout << "\n";
  opts.title = "S  (key: name, city)";
  PrintTable(std::cout, s, opts);

  bench::Section("common-attribute matching before/after the insertion");
  std::cout << "S tuples with >1 same-name R candidate, before insert: "
            << AmbiguousSTuples(r, s) << "   (paper: 0)\n";
  Status st = r.Insert(fixtures::Table1AmbiguousInsert());
  EID_CHECK(st.ok());
  std::cout << "after inserting (VillageWok, Penn.Ave., Chinese):        "
            << AmbiguousSTuples(r, s)
            << "   (paper: 1 — \"it is not clear which is correct\")\n";

  bench::Section(
      "extended key {name, street, city} + Example 1 knowledge");
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example1ExtendedKey();
  config.ilfds = fixtures::Example1Ilfds();
  std::cout << config.ilfds.ToString();
  EntityIdentifier identifier(config);
  IdentificationResult result = identifier.Identify(r, s).value();
  std::cout << "\nsound: " << (result.Sound() ? "yes" : "no")
            << "   matches: " << result.matching.size()
            << "   (paper: the first tuples of R and S refer to the same "
               "entity; the insertion causes no problem)\n";
  PrintOptions mt_opts;
  mt_opts.title = "matching table";
  PrintTable(std::cout, result.MatchingRelation().value(), mt_opts);
  std::cout << "\nPenn.Ave. tuple matched: "
            << (result.matching.HasR(3) ? "yes (WRONG)" : "no (correct)")
            << "\n";
  return 0;
}
