// Experiment T5–T8 — Example 3: Tables 5, 6, 7 and 8.
//
// Regenerates, with both matching-table constructions:
//   Table 5 — source relations;
//   Table 6 — extended relations R', S' (ILFDs I1..I8, incl. the I7→I8
//             chain behind the derived I9);
//   Table 7 — MT_RS;
//   Table 8 — the uniform ILFDs I1..I4 stored as the relation
//             IM(speciality; cuisine), and the §4.2 relational-expression
//             pipeline run from ILFD tables, cross-checked against the
//             direct matcher.

#include "bench_util.h"
#include "eid.h"
#include "workload/fixtures.h"

using namespace eid;

int main() {
  bench::Banner("T5-T8", "Example 3 — the full extended-key + ILFD pipeline");

  Relation r = fixtures::Example3R();
  Relation s = fixtures::Example3S();
  IlfdSet ilfds = fixtures::Example3Ilfds();

  PrintOptions opts;
  opts.sort_rows = false;
  opts.title = "Table 5: R  (key: name, cuisine)";
  PrintTable(std::cout, r, opts);
  std::cout << "\n";
  opts.title = "Table 5: S  (key: name, speciality)";
  PrintTable(std::cout, s, opts);
  std::cout << "\nILFDs:\n" << ilfds.ToString();

  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(r, s);
  config.extended_key = fixtures::Example3ExtendedKey();
  config.ilfds = ilfds;
  bench::RequireCleanRuleProgram("example3", r, s, config);
  EntityIdentifier identifier(config);
  IdentificationResult result = identifier.Identify(r, s).value();

  bench::Section("Table 6 — extended relations");
  opts.title = "R'";
  PrintTable(std::cout, result.r_extended, opts);
  std::cout << "\n";
  opts.title = "S'";
  PrintTable(std::cout, result.s_extended, opts);

  bench::Section("Table 7 — matching table MT_RS");
  PrintOptions mt;
  mt.title = "MT_RS";
  PrintTable(std::cout, result.MatchingRelation().value(), mt);
  std::cout << "(paper Table 7: TwinCities/Chinese-Hunan, It'sGreek-Gyros, "
               "Anjuman-Mughalai)\n";

  bench::Section("Table 8 — ILFD table IM(speciality; cuisine)");
  std::vector<Ilfd> taxonomy(ilfds.ilfds().begin(),
                             ilfds.ilfds().begin() + 4);  // I1..I4
  IlfdTable im = IlfdTable::FromIlfds(taxonomy).value();
  PrintOptions im_opts;
  im_opts.title = im.relation().name();
  PrintTable(std::cout, im.relation(), im_opts);

  bench::Section("§4.2 relational-expression pipeline from IM tables");
  std::vector<IlfdTable> tables = IlfdTable::Partition(ilfds.ilfds()).value();
  std::cout << "ILFD tables: " << tables.size() << " formats\n";
  AlgebraPipelineResult algebraic =
      BuildMatchingTableAlgebraically(r, s,
                                      AttributeCorrespondence::Identity(r, s),
                                      fixtures::Example3ExtendedKey(), tables)
          .value();
  std::cout << "derivation rounds: R side " << algebraic.r_rounds
            << ", S side " << algebraic.s_rounds
            << "  (the paper pre-composes I9; round 2 on the R side replays "
               "that composition)\n";
  Relation direct_mt = result.MatchingRelation().value();
  direct_mt.set_name("MT");
  std::cout << "algebraic MT == direct MT: "
            << (algebraic.matching.RowsEqualUnordered(direct_mt) ? "yes"
                                                                 : "NO")
            << "\n";

  bench::Section("derived ILFD I9 (paper §4.2 / §5)");
  Ilfd i9 = fixtures::Example3DerivedI9();
  std::cout << "I9: " << i9.ToString() << "\n"
            << "implied by I1..I8: " << (ilfds.Implies(i9) ? "yes" : "NO")
            << "\n";
  std::vector<Ilfd> derived = ilfds.DerivedIlfds(3);
  bool found = false;
  for (const Ilfd& f : derived) {
    if (f == i9) found = true;
  }
  std::cout << "found by DerivedIlfds enumeration: " << (found ? "yes" : "NO")
            << "  (" << derived.size() << " derived candidates total)\n";
  return 0;
}
