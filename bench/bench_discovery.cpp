// Experiment E1 — knowledge acquisition: mining ILFDs and discovering
// extended keys from instances.
//
// The paper's conclusion: semantic information "can be supplied either by
// database administrators during schema integration or through some
// knowledge acquisition tools." This bench measures that tool on the
// synthetic world, where ground truth is known:
//
//   * ILFD mining — precision (mined rules implied by the true knowledge)
//     and taxonomy recall (true speciality→cuisine rules recovered), as
//     the support threshold varies; plus cross-confirmation on a second
//     sample;
//   * extended-key discovery — does the designed key {name, speciality}
//     surface among the minimal identifying attribute sets?
//   * end-to-end — identification driven purely by *mined* knowledge vs
//     the true knowledge.

#include <cstdio>
#include <set>

#include "bench_util.h"
#include "eid.h"
#include "workload/generator.h"

using namespace eid;

int main() {
  bench::Banner("E1", "knowledge acquisition — mining ILFDs and keys");

  GeneratorConfig gen;
  gen.seed = 41;
  gen.overlap_entities = 150;
  gen.r_only_entities = 75;
  gen.s_only_entities = 75;
  gen.name_pool = 600;
  gen.street_pool = 900;
  gen.cities = 10;
  gen.speciality_pool = 24;
  gen.cuisines = 6;
  gen.ilfd_coverage = 1.0;
  GeneratedWorld world = GenerateWorld(gen).value();
  bench::RequireCleanWorld("discovery sample", world);

  // A second sample drawn from the *same taxonomies* for confirmation.
  gen.resample_seed = 4242;
  GeneratedWorld witness = GenerateWorld(gen).value();
  gen.resample_seed = 0;
  bench::RequireCleanWorld("discovery witness", witness);

  bench::Section("ILFD mining from the universe sample");
  std::printf("%-12s %8s %11s %16s %13s\n", "min_support", "mined",
              "precision", "taxonomy-recall", "confirmed");
  for (size_t support : {2u, 3u, 5u}) {
    MinerOptions opts;
    opts.min_support = support;
    opts.max_antecedent = 1;
    std::vector<MinedIlfd> mined = MineIlfds(world.universe, opts);
    size_t correct = 0, taxonomy = 0;
    for (const MinedIlfd& m : mined) {
      if (world.ilfds.Implies(m.ilfd)) ++correct;
      if (m.ilfd.AntecedentAttributes() ==
              std::vector<std::string>{"speciality"} &&
          m.ilfd.ConsequentAttributes() ==
              std::vector<std::string>{"cuisine"}) {
        ++taxonomy;
      }
    }
    // Taxonomy recall: specialities with >= support occurrences.
    std::map<std::string, size_t> spec_counts;
    size_t spec_idx = *world.universe.schema().IndexOf("speciality");
    for (const Row& row : world.universe.rows()) {
      spec_counts[row[spec_idx].ToString()]++;
    }
    size_t reachable = 0;
    for (const auto& [spec, count] : spec_counts) {
      if (count >= support) ++reachable;
    }
    size_t confirmed = ConfirmOn(mined, witness.universe).size();
    std::printf("%-12zu %8zu %10.1f%% %11zu/%-4zu %13zu\n", support,
                mined.size(), mined.empty() ? 100.0
                                            : 100.0 * correct / mined.size(),
                taxonomy, reachable, confirmed);
  }
  std::cout << "(expected shape: precision rises with support; the "
               "speciality→cuisine taxonomy is fully recovered for every "
               "sufficiently-supported speciality)\n";

  bench::Section("extended-key discovery over the universe");
  KeyDiscoveryOptions key_opts;
  key_opts.max_size = 2;
  std::vector<ExtendedKey> keys =
      DiscoverMinimalKeys(world.universe, key_opts).value();
  std::cout << "minimal identifying sets (size<=2): ";
  for (size_t i = 0; i < keys.size(); ++i) {
    std::cout << (i ? ", " : "") << keys[i].ToString();
  }
  std::cout << "\n";
  std::vector<RankedKey> ranked =
      RankKeysForPair(keys, world.correspondence, world.ilfds);
  std::cout << "usable for the R/S pair (ILFD-derivable), best first: ";
  for (size_t i = 0; i < ranked.size(); ++i) {
    std::cout << (i ? ", " : "") << ranked[i].key.ToString();
  }
  std::cout << "\ndesigned key " << world.extended_key.ToString()
            << " discovered: "
            << (std::find(keys.begin(), keys.end(), world.extended_key) !=
                        keys.end()
                    ? "yes"
                    : "no (subsumed by a smaller key)")
            << "\n";

  bench::Section("identification with mined knowledge only");
  {
    MinerOptions opts;
    opts.min_support = 2;
    opts.max_antecedent = 2;
    // Mine from the union of both *source* relations' joinable info plus
    // the universe sample (a DBA-curated sample of the integrated world).
    IlfdSet mined = MineIlfdSet(world.universe, opts);
    IdentifierConfig config;
    config.correspondence = world.correspondence;
    config.extended_key = world.extended_key;
    config.ilfds = mined;
    IdentificationResult with_mined =
        EntityIdentifier(config).Identify(world.r, world.s).value();
    config.ilfds = world.ilfds;
    IdentificationResult with_true =
        EntityIdentifier(config).Identify(world.r, world.s).value();
    std::set<TuplePair> truth(world.truth.begin(), world.truth.end());
    size_t mined_correct = 0;
    for (const TuplePair& p : with_mined.matching.pairs()) {
      if (truth.count(p) > 0) ++mined_correct;
    }
    std::printf(
        "true knowledge: %zu matches; mined knowledge: %zu matches "
        "(%zu correct, %zu unsound)\n",
        with_true.matching.size(), with_mined.matching.size(), mined_correct,
        with_mined.matching.size() - mined_correct);
    std::cout << "(mined pair-rules can overfit — the bench quantifies how "
                 "far acquisition alone gets before DBA review)\n";
  }
  return 0;
}
