// Experiment §6.3 — the prototype session transcripts.
//
// Replays the Appendix/§6.3 interaction: candidate listing, setup_extkey
// with the full key ("verified"), setup_extkey with {name} alone ("causes
// unsound matching result"), print_matchtable and print_integ_table, in
// the prototype's r_*/s_* column layout with `null` placeholders, using
// first-match (Prolog cut) derivation semantics.

#include <algorithm>

#include "bench_util.h"
#include "eid.h"
#include "workload/fixtures.h"

using namespace eid;

namespace {

std::vector<size_t> PickByName(const std::vector<std::string>& candidates,
                               const std::vector<std::string>& wanted) {
  std::vector<size_t> picks;
  for (const std::string& w : wanted) {
    auto it = std::find(candidates.begin(), candidates.end(), w);
    EID_CHECK(it != candidates.end());
    picks.push_back(static_cast<size_t>(it - candidates.begin()));
  }
  return picks;
}

}  // namespace

int main() {
  bench::Banner("S6.3", "prototype session — setup_extkey and the printers");

  PrototypeSession session(fixtures::Example3R(), fixtures::Example3S(),
                           AttributeCorrespondence::Identity(
                               fixtures::Example3R(), fixtures::Example3S()),
                           fixtures::Example3Ilfds());

  std::cout << "| ?- setup_extkey.\n" << session.ListCandidates()
            << "Please input the no. of keys: 3\n"
            << "(selecting name, cuisine, speciality)\n";
  std::cout << session
                   .SetupExtendedKey(PickByName(
                       session.candidates(), {"name", "cuisine", "speciality"}))
                   .value()
            << "\n(paper: \"The extended key is verified.\")\n\n";

  std::cout << "| ?- print_matchtable.\n"
            << session.PrintMatchingTable().value() << "\n";
  std::cout << "| ?- print_integ_table.\n"
            << session.PrintIntegratedTable().value() << "\n";

  std::cout << "| ?- setup_extkey.   (now with 1 key: name)\n";
  std::cout << session.SetupExtendedKey(PickByName(session.candidates(),
                                                   {"name"}))
                   .value()
            << "\n(paper: \"The extended key causes unsound matching "
               "result.\")\n";
  return 0;
}
