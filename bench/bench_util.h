// Shared helpers for the bench harness: banner printing, wall-clock
// timing, and startup rule-program validation. Each bench binary
// regenerates one table/figure of the paper (see DESIGN.md's
// per-experiment index) and prints both the paper's expected artefact and
// the value this implementation measures.

#ifndef EID_BENCH_BENCH_UTIL_H_
#define EID_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "exec/stage_stats.h"
#include "workload/generator.h"

namespace eid {
namespace bench {

/// Lints the rule program at bench startup and aborts with the full
/// diagnostic list when it has error-severity findings, so a synthetic
/// workload bug fails fast instead of silently skewing BENCH_*.json.
/// Warnings are printed but don't abort (degenerate study configs — e.g.
/// zero ILFD coverage — warn legitimately). Closure checks stay bounded
/// via the analyzer's closure_rule_limit for huge generated rule sets.
/// Rule programs validated so far this process, by caller-chosen name.
/// Benchmark fixtures rebuild the same world once per registered benchmark
/// instance; validating a given `what` once per process keeps startup
/// linear in the number of distinct worlds.
inline std::set<std::string>& ValidatedPrograms() {
  static std::set<std::string> validated;
  return validated;
}

inline void RequireCleanRuleProgram(const std::string& what,
                                    const Relation& r, const Relation& s,
                                    const IdentifierConfig& config) {
  if (!ValidatedPrograms().insert(what).second) return;
  analysis::AnalysisReport report =
      analysis::AnalyzeRuleProgram(r, s, config);
  if (report.HasErrors()) {
    std::cerr << "bench rule-program validation failed (" << what << "):\n"
              << report.ToString();
    std::abort();
  }
  if (report.WarningCount() > 0) {
    std::cerr << "bench rule-program warnings (" << what << "):\n"
              << report.ToString();
  }
}

/// GeneratedWorld form: validates the generator's ILFDs, extended key and
/// correspondence exactly as a matcher would consume them.
inline void RequireCleanWorld(const std::string& what,
                              const GeneratedWorld& world) {
  // Check before assembling the config: copying the world's ILFD set and
  // correspondence per benchmark instance dwarfed the dedup it fed.
  if (ValidatedPrograms().count(what) > 0) return;
  IdentifierConfig config;
  config.correspondence = world.correspondence;
  config.extended_key = world.extended_key;
  config.ilfds = world.ilfds;
  RequireCleanRuleProgram(what, world.r, world.s, config);
}

inline void Banner(const std::string& experiment_id,
                   const std::string& title) {
  std::string rule(72, '=');
  std::cout << rule << "\n" << experiment_id << " — " << title << "\n"
            << rule << "\n";
}

inline void Section(const std::string& title) {
  std::cout << "\n--- " << title << " ---\n";
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(end - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Process CPU time. On shared single-core CI runners wall clock measures
/// the neighbours as much as the code; CPU time is what the README's
/// performance numbers report, so improvements survive noisy machines.
class CpuTimer {
 public:
  CpuTimer() : start_(Now()) {}
  double ElapsedMs() const { return (Now() - start_) * 1e3; }

 private:
  static double Now() {
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
  double start_;
};

/// One scaling measurement: benchmark case, input size, thread count,
/// nanoseconds per operation — plus, for pair-sweep benches, how many
/// candidate pairs the staged generator actually evaluated against the
/// |R'|·|S'| cross product it replaced (the blocking-effectiveness
/// signal CI guards; see scripts/bench.sh).
struct JsonRecord {
  std::string name;
  size_t n = 0;
  int threads = 1;
  double ns_op = 0.0;
  bool has_pairs = false;
  size_t candidate_pairs = 0;
  size_t cross_product = 0;
  bool has_blocks = false;
  size_t pair_blocks = 0;
  size_t block_early_exits = 0;
  bool has_columnar = false;
  size_t probe_batches = 0;
  size_t interner_reuse_hits = 0;
  double columnar_encode_ms = 0.0;
};

/// Columnar-engine counters of one run, summed over its stages: batched
/// join probes, ids served without re-encoding, and wall time spent
/// encoding Values into ids (exec/columnar_world.h).
struct ColumnarCounters {
  size_t probe_batches = 0;
  size_t interner_reuse_hits = 0;
  double columnar_encode_ms = 0.0;

  static ColumnarCounters Sum(const std::vector<exec::StageStats>& stages) {
    ColumnarCounters out;
    for (const exec::StageStats& stage : stages) {
      out.probe_batches += stage.probe_batches;
      out.interner_reuse_hits += stage.interner_reuse_hits;
      out.columnar_encode_ms += stage.columnar_encode_ms;
    }
    return out;
  }
};

/// Accumulates JsonRecords and writes them as a JSON array, one record per
/// line. WriteFile merges with an existing file written by this emitter
/// (another bench binary's run), newer records replacing older ones with
/// the same (name, n, threads) key — so the scaling benches can share one
/// BENCH_scaling.json at the repo root.
class JsonEmitter {
 public:
  void Record(const std::string& name, size_t n, int threads, double ns_op) {
    records_.push_back(JsonRecord{name, n, threads, ns_op});
  }

  /// Pair-sweep form: also emits candidate_pairs / cross_product. The
  /// extra keys land after ns_op so the (name, n, threads) merge key —
  /// the line prefix up to "ns_op" — is unchanged.
  void Record(const std::string& name, size_t n, int threads, double ns_op,
              size_t candidate_pairs, size_t cross_product) {
    records_.push_back(JsonRecord{name, n, threads, ns_op, /*has_pairs=*/true,
                                  candidate_pairs, cross_product});
  }

  /// Block-evaluator form: pair-sweep counters plus how many 256-lane
  /// residual blocks ran and how many stopped early once no lane could
  /// still be kTrue (exec/stage_stats.h). Same merge-key rule: every
  /// extra key lands after ns_op.
  void Record(const std::string& name, size_t n, int threads, double ns_op,
              size_t candidate_pairs, size_t cross_product,
              size_t pair_blocks, size_t block_early_exits) {
    JsonRecord r{name, n, threads, ns_op, /*has_pairs=*/true,
                 candidate_pairs, cross_product};
    r.has_blocks = true;
    r.pair_blocks = pair_blocks;
    r.block_early_exits = block_early_exits;
    records_.push_back(std::move(r));
  }

  /// Columnar-engine form: also emits probe_batches / interner_reuse_hits /
  /// columnar_encode_ms. Same merge-key rule: every extra key lands after
  /// ns_op.
  void Record(const std::string& name, size_t n, int threads, double ns_op,
              const ColumnarCounters& columnar) {
    JsonRecord r{name, n, threads, ns_op};
    r.has_columnar = true;
    r.probe_batches = columnar.probe_batches;
    r.interner_reuse_hits = columnar.interner_reuse_hits;
    r.columnar_encode_ms = columnar.columnar_encode_ms;
    records_.push_back(std::move(r));
  }

  static std::string ToLine(const JsonRecord& r) {
    std::ostringstream out;
    out << "  {\"name\": \"" << r.name << "\", \"n\": " << r.n
        << ", \"threads\": " << r.threads << ", \"ns_op\": " << r.ns_op;
    if (r.has_pairs) {
      out << ", \"candidate_pairs\": " << r.candidate_pairs
          << ", \"cross_product\": " << r.cross_product;
    }
    if (r.has_blocks) {
      out << ", \"pair_blocks\": " << r.pair_blocks
          << ", \"block_early_exits\": " << r.block_early_exits;
    }
    if (r.has_columnar) {
      out << ", \"probe_batches\": " << r.probe_batches
          << ", \"interner_reuse_hits\": " << r.interner_reuse_hits
          << ", \"columnar_encode_ms\": " << r.columnar_encode_ms;
    }
    out << "}";
    return out.str();
  }

  bool WriteFile(const std::string& path) const {
    // Keyed lines; existing entries first so new ones replace them.
    std::map<std::string, std::string> lines;
    std::vector<std::string> order;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("  {\"name\"", 0) != 0) continue;
      if (!line.empty() && line.back() == ',') line.pop_back();
      std::string key = line.substr(0, line.find("\"ns_op\""));
      if (lines.emplace(key, line).second) order.push_back(key);
    }
    in.close();
    for (const JsonRecord& r : records_) {
      std::string full = ToLine(r);
      std::string key = full.substr(0, full.find("\"ns_op\""));
      if (lines.emplace(key, full).second) {
        order.push_back(key);
      } else {
        lines[key] = full;
      }
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    out << "[\n";
    for (size_t i = 0; i < order.size(); ++i) {
      out << lines[order[i]] << (i + 1 < order.size() ? ",\n" : "\n");
    }
    out << "]\n";
    return out.good();
  }

  const std::vector<JsonRecord>& records() const { return records_; }

 private:
  std::vector<JsonRecord> records_;
};

/// Shared emitter for bench binaries whose main() writes BENCH_scaling.json.
inline JsonEmitter& GlobalJson() {
  static JsonEmitter emitter;
  return emitter;
}

/// Output path: $EID_BENCH_JSON, or BENCH_scaling.json in the working
/// directory (run bench binaries from the repo root to land it there).
inline std::string ScalingJsonPath() {
  const char* env = std::getenv("EID_BENCH_JSON");
  return env != nullptr && *env != '\0' ? env : "BENCH_scaling.json";
}

}  // namespace bench
}  // namespace eid

#endif  // EID_BENCH_BENCH_UTIL_H_
