// Shared helpers for the bench harness: banner printing and wall-clock
// timing. Each bench binary regenerates one table/figure of the paper (see
// DESIGN.md's per-experiment index) and prints both the paper's expected
// artefact and the value this implementation measures.

#ifndef EID_BENCH_BENCH_UTIL_H_
#define EID_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <iostream>
#include <string>

namespace eid {
namespace bench {

inline void Banner(const std::string& experiment_id,
                   const std::string& title) {
  std::string rule(72, '=');
  std::cout << rule << "\n" << experiment_id << " — " << title << "\n"
            << rule << "\n";
}

inline void Section(const std::string& title) {
  std::cout << "\n--- " << title << " ---\n";
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(end - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bench
}  // namespace eid

#endif  // EID_BENCH_BENCH_UTIL_H_
