// Shared helpers for the bench harness: banner printing and wall-clock
// timing. Each bench binary regenerates one table/figure of the paper (see
// DESIGN.md's per-experiment index) and prints both the paper's expected
// artefact and the value this implementation measures.

#ifndef EID_BENCH_BENCH_UTIL_H_
#define EID_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace eid {
namespace bench {

inline void Banner(const std::string& experiment_id,
                   const std::string& title) {
  std::string rule(72, '=');
  std::cout << rule << "\n" << experiment_id << " — " << title << "\n"
            << rule << "\n";
}

inline void Section(const std::string& title) {
  std::cout << "\n--- " << title << " ---\n";
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(end - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One scaling measurement: benchmark case, input size, thread count,
/// nanoseconds per operation.
struct JsonRecord {
  std::string name;
  size_t n = 0;
  int threads = 1;
  double ns_op = 0.0;
};

/// Accumulates JsonRecords and writes them as a JSON array, one record per
/// line. WriteFile merges with an existing file written by this emitter
/// (another bench binary's run), newer records replacing older ones with
/// the same (name, n, threads) key — so the scaling benches can share one
/// BENCH_scaling.json at the repo root.
class JsonEmitter {
 public:
  void Record(const std::string& name, size_t n, int threads, double ns_op) {
    records_.push_back(JsonRecord{name, n, threads, ns_op});
  }

  static std::string ToLine(const JsonRecord& r) {
    std::ostringstream out;
    out << "  {\"name\": \"" << r.name << "\", \"n\": " << r.n
        << ", \"threads\": " << r.threads << ", \"ns_op\": " << r.ns_op
        << "}";
    return out.str();
  }

  bool WriteFile(const std::string& path) const {
    // Keyed lines; existing entries first so new ones replace them.
    std::map<std::string, std::string> lines;
    std::vector<std::string> order;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("  {\"name\"", 0) != 0) continue;
      if (!line.empty() && line.back() == ',') line.pop_back();
      std::string key = line.substr(0, line.find("\"ns_op\""));
      if (lines.emplace(key, line).second) order.push_back(key);
    }
    in.close();
    for (const JsonRecord& r : records_) {
      std::string full = ToLine(r);
      std::string key = full.substr(0, full.find("\"ns_op\""));
      if (lines.emplace(key, full).second) {
        order.push_back(key);
      } else {
        lines[key] = full;
      }
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    out << "[\n";
    for (size_t i = 0; i < order.size(); ++i) {
      out << lines[order[i]] << (i + 1 < order.size() ? ",\n" : "\n");
    }
    out << "]\n";
    return out.good();
  }

  const std::vector<JsonRecord>& records() const { return records_; }

 private:
  std::vector<JsonRecord> records_;
};

/// Shared emitter for bench binaries whose main() writes BENCH_scaling.json.
inline JsonEmitter& GlobalJson() {
  static JsonEmitter emitter;
  return emitter;
}

/// Output path: $EID_BENCH_JSON, or BENCH_scaling.json in the working
/// directory (run bench binaries from the repo root to land it there).
inline std::string ScalingJsonPath() {
  const char* env = std::getenv("EID_BENCH_JSON");
  return env != nullptr && *env != '\0' ? env : "BENCH_scaling.json";
}

}  // namespace bench
}  // namespace eid

#endif  // EID_BENCH_BENCH_UTIL_H_
