// Experiment T9/§5 — the ILFD theory: Armstrong's axioms, the §5.2 closure
// example, the derived inference rules of Lemma 2, and Propositions 1–2.
//
// Paper claims verified here:
//   * reflexivity/augmentation/transitivity are sound and complete
//     (Theorem 1) — checked by exhaustive model enumeration on random
//     knowledge bases, plus machine-checked proof objects;
//   * the §5.2 example F = {(A=a1)→(B=b1), (B=b1)→(C=c1)} and its closure;
//   * union / pseudotransitivity / decomposition (Lemma 2);
//   * Proposition 2: a covering ILFD family implies the classical FD.

#include "bench_util.h"
#include "eid.h"
#include "workload/rng.h"

using namespace eid;

int main() {
  bench::Banner("T9/S5", "ILFD theory — axioms, closure, propositions");

  bench::Section("the §5.2 example: F = {P->Q, Q->R}");
  IlfdSet f;
  f.AddText("A=a1 -> B=b1").value();
  f.AddText("B=b1 -> C=c1").value();
  std::cout << f.ToString();
  std::vector<Atom> closure = f.ConditionClosure({Atom{"A", Value::Str("a1")}});
  std::cout << "closure of {A=a1}: ";
  for (size_t i = 0; i < closure.size(); ++i) {
    std::cout << (i ? ", " : "") << closure[i].ToString();
  }
  std::cout << "   (paper: P, Q, R all derivable)\n";
  Ilfd pr = ParseIlfd("A=a1 -> C=c1").value();
  AtomTable atoms;
  Proof proof = f.Prove(pr, &atoms).value();
  std::cout << "\nproof of (A=a1 -> C=c1):\n" << proof.ToString(atoms);

  bench::Section("Theorem 1 — soundness & completeness (randomized check)");
  Rng rng(99);
  const size_t universe = 10;
  size_t trials = 500, derivable_count = 0, agreements = 0;
  for (size_t t = 0; t < trials; ++t) {
    KnowledgeBase kb;
    std::vector<Implication> clauses;
    size_t n = 1 + rng.Below(6);
    for (size_t c = 0; c < n; ++c) {
      std::vector<AtomId> body, head;
      for (size_t i = 0, nb = 1 + rng.Below(3); i < nb; ++i) {
        body.push_back(static_cast<AtomId>(rng.Below(universe)));
      }
      head.push_back(static_cast<AtomId>(rng.Below(universe)));
      Implication imp{AtomSet(body), AtomSet(head)};
      clauses.push_back(imp);
      kb.Add(imp);
    }
    std::vector<AtomId> tb{static_cast<AtomId>(rng.Below(universe)),
                           static_cast<AtomId>(rng.Below(universe))};
    Implication target{AtomSet(tb),
                       AtomSet::Of({static_cast<AtomId>(rng.Below(universe))})};
    bool syntactic = kb.Implies(target);
    bool semantic = EntailsByExhaustiveModels(clauses, target, universe);
    if (syntactic == semantic) ++agreements;
    if (syntactic) {
      ++derivable_count;
      Proof p = BuildProof(kb, target).value();
      Status ok = VerifyProof(kb, p, target);
      EID_CHECK(ok.ok());
    }
  }
  std::cout << "trials: " << trials << "   syntactic == semantic: "
            << agreements << "/" << trials
            << "   machine-checked proofs: " << derivable_count
            << "   (paper: sound and complete)\n";

  bench::Section("Lemma 2 — derived rules");
  Implication xy{AtomSet::Of({0}), AtomSet::Of({1})};
  Implication xz{AtomSet::Of({0}), AtomSet::Of({2})};
  Implication wyz{AtomSet::Of({1, 5}), AtomSet::Of({9})};
  std::cout << "union:              X->Y, X->Z    |- X->Y^Z : "
            << (ApplyUnion(xy, xz).ok() ? "ok" : "FAIL") << "\n";
  std::cout << "pseudotransitivity: X->Y, WY->Z   |- WX->Z  : "
            << (ApplyPseudoTransitivity(xy, wyz).ok() ? "ok" : "FAIL") << "\n";
  std::cout << "decomposition:      X->Y^Z        |- X->Z   : "
            << (ApplyDecomposition(Implication{AtomSet::Of({0}),
                                               AtomSet::Of({1, 2})},
                                   AtomSet::Of({2}))
                        .ok()
                    ? "ok"
                    : "FAIL")
            << "\n";

  bench::Section("Proposition 2 — ILFD families vs FDs");
  IlfdSet family;
  family.AddText("speciality=Hunan -> cuisine=Chinese").value();
  family.AddText("speciality=Gyros -> cuisine=Greek").value();
  family.AddText("speciality=Mughalai -> cuisine=Indian").value();
  Relation rel("R", Schema::OfStrings({"speciality", "cuisine"}));
  EID_CHECK(rel.InsertText({"Hunan", "Chinese"}).ok());
  EID_CHECK(rel.InsertText({"Gyros", "Greek"}).ok());
  EID_CHECK(rel.InsertText({"Mughalai", "Indian"}).ok());
  Fd fd{{"speciality"}, {"cuisine"}};
  bool covers = IlfdFamilyCoversFd(family, rel, fd).value();
  bool holds = FdHolds(rel, fd).value();
  std::cout << "family covers active domain: " << (covers ? "yes" : "no")
            << "   FD " << fd.ToString() << " holds: "
            << (holds ? "yes" : "no") << "   (paper: premise => FD)\n";
  IlfdSet empty;
  bool converse = IlfdFamilyCoversFd(empty, rel, fd).value();
  std::cout << "converse (FD holds but no ILFD family): covers="
            << (converse ? "yes" : "no")
            << "   (paper: the converse is not necessarily true)\n";

  bench::Section("minimal cover");
  IlfdSet redundant;
  redundant.AddText("a=1 -> b=2").value();
  redundant.AddText("b=2 -> c=3").value();
  redundant.AddText("a=1 -> c=3").value();        // implied
  redundant.AddText("a=1 & x=9 -> b=2").value();  // extraneous condition
  IlfdSet cover = redundant.MinimalCover();
  std::cout << "input ILFDs: " << redundant.size()
            << "   minimal cover: " << cover.size()
            << "   equivalent: "
            << (cover.EquivalentTo(redundant) ? "yes" : "NO") << "\n";
  return 0;
}
