// Experiment F3 — Figure 3: the three matching regions under growing
// knowledge.
//
// Paper claim (§3.3): with a monotonic technique, the matching and
// non-matching sets expand and the undetermined set shrinks as semantic
// information is supplied; completeness = empty undetermined set. This
// bench regenerates the series on the paper's own Example 3 (adding
// I1..I8 one at a time) and on a larger generated world (coverage sweep).

#include <cstdio>

#include "bench_util.h"
#include "eid.h"
#include "workload/fixtures.h"
#include "workload/generator.h"

using namespace eid;

int main() {
  bench::Banner("F3", "Figure 3 — matching / non-matching / undetermined");

  bench::Section("Example 3: adding ILFDs I1..I8 one at a time");
  {
    Relation r = fixtures::Example3R();
    Relation s = fixtures::Example3S();
    IdentifierConfig config;
    config.correspondence = AttributeCorrespondence::Identity(r, s);
    config.extended_key = fixtures::Example3ExtendedKey();
    MonotonicEngine engine(r, s, config);
    std::printf("%-10s %9s %13s %13s\n", "knowledge", "matching",
                "non-matching", "undetermined");
    const PairPartition& p0 = engine.result().partition;
    std::printf("%-10s %9zu %13zu %13zu\n", "none", p0.matched,
                p0.non_matched, p0.undetermined);
    IlfdSet knowledge = fixtures::Example3Ilfds();
    for (size_t i = 0; i < knowledge.size(); ++i) {
      Status st = engine.AddIlfd(knowledge.ilfd(i));
      EID_CHECK(st.ok());
      const PairPartition& p = engine.result().partition;
      std::printf("+I%-8zu %9zu %13zu %13zu\n", i + 1, p.matched,
                  p.non_matched, p.undetermined);
    }
    std::cout << "monotonicity violations: " << engine.violations().size()
              << "   (paper: matching/non-matching only expand)\n";
  }

  bench::Section("generated world: undetermined rate vs ILFD coverage");
  std::printf("%-10s %9s %13s %13s %19s\n", "coverage", "matching",
              "non-matching", "undetermined", "undetermined-rate");
  for (double coverage : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    GeneratorConfig gen;
    gen.seed = 7;
    gen.overlap_entities = 48;
    gen.r_only_entities = 24;
    gen.s_only_entities = 24;
    gen.name_pool = 64;
    gen.street_pool = 192;
    gen.cities = 8;
    gen.speciality_pool = 24;
    gen.cuisines = 6;
    gen.ilfd_coverage = coverage;
    GeneratedWorld world = GenerateWorld(gen).value();
    bench::RequireCleanWorld(
        "fig3 coverage=" + std::to_string(coverage), world);
    IdentifierConfig config;
    config.correspondence = world.correspondence;
    config.extended_key = world.extended_key;
    config.ilfds = world.ilfds;
    EntityIdentifier identifier(config);
    IdentificationResult result =
        identifier.Identify(world.r, world.s).value();
    const PairPartition& p = result.partition;
    std::printf("%-10.2f %9zu %13zu %13zu %18.1f%%\n", coverage, p.matched,
                p.non_matched, p.undetermined,
                100.0 * p.undetermined / p.total);
    EID_CHECK(result.Sound());
  }
  std::cout << "(expected shape: matched grows ~linearly with coverage; the "
               "undetermined region shrinks toward completeness)\n";
  return 0;
}
