// Experiment F1 — Figure 1: correspondence between real-world entities and
// tuples.
//
// Paper setup: relations R and S model overlapping subsets of an entity
// universe; the integrated world is the subset modeled by at least one
// relation (e4 is outside it); a2≡b3 and a3≡b4 are the matches. This bench
// rebuilds that diagram as data and reports every piece.

#include "bench_util.h"
#include "eid.h"
#include "workload/fixtures.h"

using namespace eid;

int main() {
  bench::Banner("F1", "Figure 1 — entities vs tuples");

  fixtures::Figure1World world = fixtures::Figure1();
  PrintOptions opts;
  opts.sort_rows = false;
  opts.title = "real-world entities e1..e5";
  PrintTable(std::cout, world.universe, opts);
  std::cout << "\n";
  opts.title = "R (a1..a3)";
  PrintTable(std::cout, world.r, opts);
  std::cout << "\n";
  opts.title = "S (b2..b4)";
  PrintTable(std::cout, world.s, opts);

  bench::Section("integrated world");
  // Entities modeled by at least one of R, S (paper: excludes e4).
  size_t modeled = 0;
  for (size_t e = 0; e < world.universe.size(); ++e) {
    Row key = world.universe.PrimaryKeyOf(e);
    if (world.r.ContainsKey(key) || world.s.ContainsKey(key)) ++modeled;
  }
  std::cout << "entities modeled by R or S: " << modeled << " of "
            << world.universe.size()
            << "   (paper: 4 of 5 — e4 is in neither)\n";

  bench::Section("identification vs the diagram's matches");
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(world.r, world.s);
  config.extended_key = ExtendedKey({"name", "street"});
  EntityIdentifier identifier(config);
  IdentificationResult result = identifier.Identify(world.r, world.s).value();
  std::cout << "matched pairs: " << result.matching.size()
            << "   (paper: 2 — a2≡b3 and a3≡b4)\n";
  for (const TuplePair& p : result.matching.pairs()) {
    std::cout << "  a" << p.r_index + 1 << " == b" << p.s_index + 2 << "   "
              << world.r.tuple(p.r_index).ToString() << "\n";
  }
  bool correct = result.matching.pairs().size() == world.truth.size();
  for (const auto& [ri, si] : world.truth) {
    if (!result.matching.Contains(TuplePair{ri, si})) correct = false;
  }
  std::cout << "matches equal the diagram's ground truth: "
            << (correct ? "yes" : "NO") << "\n";
  return 0;
}
