// Experiment F2 — Figure 2: difficulties in guaranteeing soundness.
//
// Paper claim: tuples with identical attribute values (VillageWok, Chinese)
// in DB1 and DB2 model *different* restaurants; concluding r1 ≡ s1 from
// attribute-value equivalence violates soundness. Adding the `domain`
// attribute and a distinctness assertion about the databases' coverage
// blocks the unsound match.

#include "baselines/probabilistic_attr.h"
#include "bench_util.h"
#include "eid.h"
#include "workload/fixtures.h"

using namespace eid;

int main() {
  bench::Banner("F2", "Figure 2 — soundness breakdown and domain attribute");

  Relation universe = fixtures::Figure2Universe();
  PrintOptions opts;
  opts.sort_rows = false;
  opts.title = "integrated world (two distinct VillageWok restaurants)";
  PrintTable(std::cout, universe, opts);

  bench::Section("is (name, cuisine) an extended key of this world?");
  Status verify =
      ExtendedKey({"name", "cuisine"}).VerifyAgainstUniverse(universe);
  std::cout << verify.ToString()
            << "\n(paper: no — the identity rule over equal attribute values "
               "is not valid here)\n";

  bench::Section("attribute-equivalence matching (unsound)");
  Relation r = fixtures::Figure2R();
  Relation s = fixtures::Figure2S();
  ProbabilisticAttrMatcher attr_matcher(
      AttributeCorrespondence::Identity(r, s));
  BaselineResult by_attrs = attr_matcher.Match(r, s).value();
  MatchQuality quality = Evaluate(by_attrs, /*ground_truth=*/{}, 1, 1);
  std::cout << "claimed matches: " << by_attrs.matching.size()
            << "   false matches: " << quality.false_matches
            << "   sound: " << (quality.Sound() ? "yes" : "NO")
            << "   (paper: soundness is violated)\n";

  bench::Section("with the domain attribute + coverage knowledge (sound)");
  Relation rd = fixtures::Figure2RWithDomain();
  Relation sd = fixtures::Figure2SWithDomain();
  IdentifierConfig config;
  config.correspondence = AttributeCorrespondence::Identity(rd, sd);
  config.identity_rules.push_back(IdentityRule::KeyEquivalence(
      "attrs+domain", {"name", "cuisine", "domain"}));
  DistinctnessRule disjoint =
      ParseDistinctnessRule("disjoint-domains",
                            "e1.domain = \"DB1\" & e2.domain = \"DB2\"")
          .value();
  config.distinctness_rules.push_back(disjoint);
  EntityIdentifier identifier(config);
  IdentificationResult result = identifier.Identify(rd, sd).value();
  std::cout << "matches: " << result.matching.size()
            << "   certified distinct: " << result.negative.table.size()
            << "   sound: " << (result.Sound() ? "yes" : "no")
            << "   (paper: the domain attribute lets assertions about each "
               "database's coverage be stated)\n";
  return 0;
}
